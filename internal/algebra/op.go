package algebra

import (
	"fmt"

	"disqo/internal/agg"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// Op is a logical algebra operator. Plans are DAGs: bypass operators are
// shared by a positive and a negative Stream node, and the rewriter may
// share whole subplans (e.g. Eqv. 4 reuses one bypass selection for both
// the grouped negative stream and the global positive aggregate).
type Op interface {
	// Schema is the operator's output schema, fixed at construction.
	Schema() *storage.Schema
	// Inputs returns the operator's child operators in order.
	Inputs() []Op
	// Label is the short EXPLAIN label, e.g. "σ[(r.a4 > 1500)]".
	Label() string
}

// ---------------------------------------------------------------------
// Scan

// Scan reads a base table, producing attributes qualified by the range
// variable that bound it ("r.a1").
type Scan struct {
	Table   string // catalog table name
	Binding string // range variable (alias) the attributes are qualified with
	schema  *storage.Schema
}

// NewScan builds a scan node over an explicit output schema (the
// translator derives it from the catalog and alias).
func NewScan(table, binding string, schema *storage.Schema) *Scan {
	return &Scan{Table: table, Binding: binding, schema: schema}
}

// Schema implements Op.
func (s *Scan) Schema() *storage.Schema { return s.schema }

// Inputs implements Op.
func (s *Scan) Inputs() []Op { return nil }

// Label implements Op.
func (s *Scan) Label() string {
	if s.Binding != "" && s.Binding != s.Table {
		return fmt.Sprintf("scan(%s AS %s)", s.Table, s.Binding)
	}
	return fmt.Sprintf("scan(%s)", s.Table)
}

// ---------------------------------------------------------------------
// Select and bypass select

// Select is σ_p: keeps tuples whose predicate evaluates to TRUE.
type Select struct {
	Child Op
	Pred  Expr
}

// NewSelect builds a selection.
func NewSelect(child Op, pred Expr) *Select { return &Select{Child: child, Pred: pred} }

// Schema implements Op.
func (s *Select) Schema() *storage.Schema { return s.Child.Schema() }

// Inputs implements Op.
func (s *Select) Inputs() []Op { return []Op{s.Child} }

// Label implements Op.
func (s *Select) Label() string { return fmt.Sprintf("σ[%s]", s.Pred) }

// BypassSelect is σ±_p: the positive stream carries tuples whose
// predicate is TRUE, the negative stream the complement (FALSE or
// UNKNOWN). Consumers attach via Stream nodes; both streams together are
// a disjoint partition of the input (paper Fig. 1).
type BypassSelect struct {
	Child Op
	Pred  Expr
}

// NewBypassSelect builds a bypass selection.
func NewBypassSelect(child Op, pred Expr) *BypassSelect {
	return &BypassSelect{Child: child, Pred: pred}
}

// Schema implements Op.
func (s *BypassSelect) Schema() *storage.Schema { return s.Child.Schema() }

// Inputs implements Op.
func (s *BypassSelect) Inputs() []Op { return []Op{s.Child} }

// Label implements Op.
func (s *BypassSelect) Label() string { return fmt.Sprintf("σ±[%s]", s.Pred) }

// Stream selects one output stream of a bypass operator. Its child must
// be a *BypassSelect or *BypassJoin.
type Stream struct {
	Source   Op
	Positive bool
}

// Pos returns the positive stream of a bypass operator.
func Pos(source Op) *Stream { return &Stream{Source: source, Positive: true} }

// Neg returns the negative stream of a bypass operator.
func Neg(source Op) *Stream { return &Stream{Source: source, Positive: false} }

// Schema implements Op.
func (s *Stream) Schema() *storage.Schema { return s.Source.Schema() }

// Inputs implements Op.
func (s *Stream) Inputs() []Op { return []Op{s.Source} }

// Label implements Op.
func (s *Stream) Label() string {
	if s.Positive {
		return "+stream"
	}
	return "−stream"
}

// ---------------------------------------------------------------------
// Projection, rename, map, numbering

// Project is duplicate-preserving projection Π_A onto named attributes.
type Project struct {
	Child  Op
	Attrs  []string
	schema *storage.Schema
}

// NewProject builds a projection; it panics if an attribute is missing
// from the child schema (a rewriter bug, not a user error).
func NewProject(child Op, attrs []string) *Project {
	if _, err := child.Schema().Projection(attrs); err != nil {
		panic(fmt.Sprintf("algebra: project: %v", err))
	}
	return &Project{Child: child, Attrs: attrs, schema: storage.NewSchema(attrs...)}
}

// Schema implements Op.
func (p *Project) Schema() *storage.Schema { return p.schema }

// Inputs implements Op.
func (p *Project) Inputs() []Op { return []Op{p.Child} }

// Label implements Op.
func (p *Project) Label() string { return fmt.Sprintf("Π%s", p.schema) }

// Rename is ρ_{new←old}, renaming a set of attributes.
type Rename struct {
	Child  Op
	Pairs  [][2]string // {new, old}
	schema *storage.Schema
}

// NewRename builds a rename node.
func NewRename(child Op, pairs [][2]string) (*Rename, error) {
	sch := child.Schema()
	var err error
	for _, p := range pairs {
		if sch, err = sch.Rename(p[1], p[0]); err != nil {
			return nil, err
		}
	}
	return &Rename{Child: child, Pairs: pairs, schema: sch}, nil
}

// Schema implements Op.
func (r *Rename) Schema() *storage.Schema { return r.schema }

// Inputs implements Op.
func (r *Rename) Inputs() []Op { return []Op{r.Child} }

// Label implements Op.
func (r *Rename) Label() string {
	s := "ρ["
	for i, p := range r.Pairs {
		if i > 0 {
			s += ", "
		}
		s += p[0] + "←" + p[1]
	}
	return s + "]"
}

// MapOp is χ_{a:e}: extends every tuple with a computed attribute.
type MapOp struct {
	Child  Op
	Attr   string
	Expr   Expr
	schema *storage.Schema
}

// NewMap builds a map node.
func NewMap(child Op, attr string, e Expr) *MapOp {
	return &MapOp{Child: child, Attr: attr, Expr: e, schema: child.Schema().Extend(attr)}
}

// Schema implements Op.
func (m *MapOp) Schema() *storage.Schema { return m.schema }

// Inputs implements Op.
func (m *MapOp) Inputs() []Op { return []Op{m.Child} }

// Label implements Op.
func (m *MapOp) Label() string { return fmt.Sprintf("χ[%s:%s]", m.Attr, m.Expr) }

// Number is ν_a: extends each tuple with a unique, deterministic number
// (1-based input position). It turns a multiset into a set, which is how
// Eqv. 5 keeps duplicates of R apart (paper §3.7).
type Number struct {
	Child  Op
	Attr   string
	schema *storage.Schema
}

// NewNumber builds a numbering node.
func NewNumber(child Op, attr string) *Number {
	return &Number{Child: child, Attr: attr, schema: child.Schema().Extend(attr)}
}

// Schema implements Op.
func (n *Number) Schema() *storage.Schema { return n.schema }

// Inputs implements Op.
func (n *Number) Inputs() []Op { return []Op{n.Child} }

// Label implements Op.
func (n *Number) Label() string { return fmt.Sprintf("ν[%s]", n.Attr) }

// ---------------------------------------------------------------------
// Products and joins

// CrossProduct is ×.
type CrossProduct struct {
	L, R   Op
	schema *storage.Schema
}

// NewCross builds a cross product.
func NewCross(l, r Op) *CrossProduct {
	return &CrossProduct{L: l, R: r, schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Op.
func (c *CrossProduct) Schema() *storage.Schema { return c.schema }

// Inputs implements Op.
func (c *CrossProduct) Inputs() []Op { return []Op{c.L, c.R} }

// Label implements Op.
func (c *CrossProduct) Label() string { return "×" }

// Join is the inner join ⋈_p.
type Join struct {
	L, R   Op
	Pred   Expr
	schema *storage.Schema
}

// NewJoin builds an inner join.
func NewJoin(l, r Op, pred Expr) *Join {
	return &Join{L: l, R: r, Pred: pred, schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Op.
func (j *Join) Schema() *storage.Schema { return j.schema }

// Inputs implements Op.
func (j *Join) Inputs() []Op { return []Op{j.L, j.R} }

// Label implements Op.
func (j *Join) Label() string { return fmt.Sprintf("⋈[%s]", j.Pred) }

// BypassJoin is ⋈±_p: the positive stream is the inner join, the
// negative stream the complement pairs (x◦y with ¬p — two-valued logic,
// see Fig. 1's footnote; the executor routes UNKNOWN to the negative
// stream which is sound for the WHERE-clause use here).
type BypassJoin struct {
	L, R   Op
	Pred   Expr
	schema *storage.Schema
}

// NewBypassJoin builds a bypass join.
func NewBypassJoin(l, r Op, pred Expr) *BypassJoin {
	return &BypassJoin{L: l, R: r, Pred: pred, schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Op.
func (j *BypassJoin) Schema() *storage.Schema { return j.schema }

// Inputs implements Op.
func (j *BypassJoin) Inputs() []Op { return []Op{j.L, j.R} }

// Label implements Op.
func (j *BypassJoin) Label() string { return fmt.Sprintf("⋈±[%s]", j.Pred) }

// SemiJoin is ⋉_p: keeps each left tuple that has at least one right
// partner satisfying p (once, regardless of partner count). The direct
// translation of a conjunctive correlated EXISTS / IN.
type SemiJoin struct {
	L, R Op
	Pred Expr
}

// NewSemiJoin builds a semijoin.
func NewSemiJoin(l, r Op, pred Expr) *SemiJoin { return &SemiJoin{L: l, R: r, Pred: pred} }

// Schema implements Op.
func (j *SemiJoin) Schema() *storage.Schema { return j.L.Schema() }

// Inputs implements Op.
func (j *SemiJoin) Inputs() []Op { return []Op{j.L, j.R} }

// Label implements Op.
func (j *SemiJoin) Label() string { return fmt.Sprintf("⋉[%s]", j.Pred) }

// AntiJoin is ▷_p: keeps each left tuple with NO right partner satisfying
// p — the direct translation of a conjunctive correlated NOT EXISTS.
// (Not sound for NOT IN, whose NULL semantics need the count-based form.)
type AntiJoin struct {
	L, R Op
	Pred Expr
}

// NewAntiJoin builds an antijoin.
func NewAntiJoin(l, r Op, pred Expr) *AntiJoin { return &AntiJoin{L: l, R: r, Pred: pred} }

// Schema implements Op.
func (j *AntiJoin) Schema() *storage.Schema { return j.L.Schema() }

// Inputs implements Op.
func (j *AntiJoin) Inputs() []Op { return []Op{j.L, j.R} }

// Label implements Op.
func (j *AntiJoin) Label() string { return fmt.Sprintf("▷[%s]", j.Pred) }

// Default assigns a value to an attribute for unmatched outer tuples of a
// LeftOuterJoin — the paper's g:f(∅) annotation that repairs the count
// bug.
type Default struct {
	Attr string
	Val  types.Value
}

// LeftOuterJoin is ⟕_p with per-attribute defaults for unmatched outer
// tuples: matched tuples are x◦y as in the join; an outer tuple with no
// partner is padded with NULLs except for the Defaults attributes, which
// receive their configured value (f(∅)).
type LeftOuterJoin struct {
	L, R     Op
	Pred     Expr
	Defaults []Default
	schema   *storage.Schema
}

// NewLeftOuterJoin builds a left outerjoin.
func NewLeftOuterJoin(l, r Op, pred Expr, defaults []Default) *LeftOuterJoin {
	return &LeftOuterJoin{L: l, R: r, Pred: pred, Defaults: defaults,
		schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Op.
func (j *LeftOuterJoin) Schema() *storage.Schema { return j.schema }

// Inputs implements Op.
func (j *LeftOuterJoin) Inputs() []Op { return []Op{j.L, j.R} }

// Label implements Op.
func (j *LeftOuterJoin) Label() string {
	d := ""
	for i, def := range j.Defaults {
		if i > 0 {
			d += ","
		}
		d += fmt.Sprintf("%s:%s", def.Attr, def.Val)
	}
	return fmt.Sprintf("⟕[%s][%s]", j.Pred, d)
}

// ---------------------------------------------------------------------
// Grouping

// AggItem is one aggregate computed by a grouping operator: spec, output
// attribute, and argument. For Star specs Arg is nil and ArgAttrs names
// the attributes forming the * tuple (so COUNT(DISTINCT *) of an inner
// block counts distinct inner tuples even after joins widened the row).
type AggItem struct {
	Out      string
	Spec     agg.Spec
	Arg      Expr
	ArgAttrs []string
}

// Label renders "out:COUNT(DISTINCT *)" for EXPLAIN.
func (a AggItem) Label() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	mod := ""
	if a.Spec.Distinct {
		mod = "DISTINCT "
	}
	return fmt.Sprintf("%s:%s(%s%s)", a.Out, a.Spec.Kind, mod, arg)
}

// GroupBy is the unary grouping operator Γ_{g;=A;f}: one output tuple per
// distinct grouping-attribute combination, carrying the group attributes
// and the aggregates. With no group attributes and Global set, it emits
// exactly one tuple (the SQL global aggregate); without Global an empty
// input produces no groups.
type GroupBy struct {
	Child  Op
	Attrs  []string // grouping attributes
	Aggs   []AggItem
	Global bool
	schema *storage.Schema
}

// NewGroupBy builds a unary grouping node.
func NewGroupBy(child Op, attrs []string, aggs []AggItem, global bool) *GroupBy {
	if _, err := child.Schema().Projection(attrs); err != nil {
		panic(fmt.Sprintf("algebra: groupby: %v", err))
	}
	names := append([]string(nil), attrs...)
	for _, a := range aggs {
		names = append(names, a.Out)
	}
	return &GroupBy{Child: child, Attrs: attrs, Aggs: aggs, Global: global,
		schema: storage.NewSchema(names...)}
}

// Schema implements Op.
func (g *GroupBy) Schema() *storage.Schema { return g.schema }

// Inputs implements Op.
func (g *GroupBy) Inputs() []Op { return []Op{g.Child} }

// Label implements Op.
func (g *GroupBy) Label() string {
	aggs := ""
	for i, a := range g.Aggs {
		if i > 0 {
			aggs += ","
		}
		aggs += a.Label()
	}
	if g.Global {
		return fmt.Sprintf("Γ[global][%s]", aggs)
	}
	return fmt.Sprintf("Γ[%v][%s]", g.Attrs, aggs)
}

// BinaryGroup is the binary grouping operator e1 Γ_{g;p;f} e2 (Fig. 1):
// every e1 tuple x is extended with g = f({y ∈ e2 | p(x, y)}). Empty
// match sets receive f(∅) directly — binary grouping has no count bug.
// The predicate may be an arbitrary expression over both schemas;
// internal/exec specializes equality conjunctions to a hash
// implementation (May & Moerkotte's main-memory algorithms).
type BinaryGroup struct {
	L, R   Op
	Pred   Expr
	Aggs   []AggItem
	schema *storage.Schema
}

// NewBinaryGroup builds a binary grouping node.
func NewBinaryGroup(l, r Op, pred Expr, aggs []AggItem) *BinaryGroup {
	sch := l.Schema()
	for _, a := range aggs {
		sch = sch.Extend(a.Out)
	}
	return &BinaryGroup{L: l, R: r, Pred: pred, Aggs: aggs, schema: sch}
}

// Schema implements Op.
func (b *BinaryGroup) Schema() *storage.Schema { return b.schema }

// Inputs implements Op.
func (b *BinaryGroup) Inputs() []Op { return []Op{b.L, b.R} }

// Label implements Op.
func (b *BinaryGroup) Label() string {
	aggs := ""
	for i, a := range b.Aggs {
		if i > 0 {
			aggs += ","
		}
		aggs += a.Label()
	}
	return fmt.Sprintf("Γ²[%s][%s]", b.Pred, aggs)
}

// ---------------------------------------------------------------------
// Set operations and the rest

// UnionDisjoint is ∪̇ — union of streams known to be disjoint (the two
// outputs of a bypass operator). The executor concatenates without
// duplicate checks; schemas must be equal.
type UnionDisjoint struct {
	L, R Op
}

// NewUnionDisjoint builds a disjoint union; it panics on schema mismatch
// (a rewriter bug).
func NewUnionDisjoint(l, r Op) *UnionDisjoint {
	if !l.Schema().Equal(r.Schema()) {
		panic(fmt.Sprintf("algebra: disjoint union schema mismatch: %s vs %s", l.Schema(), r.Schema()))
	}
	return &UnionDisjoint{L: l, R: r}
}

// Schema implements Op.
func (u *UnionDisjoint) Schema() *storage.Schema { return u.L.Schema() }

// Inputs implements Op.
func (u *UnionDisjoint) Inputs() []Op { return []Op{u.L, u.R} }

// Label implements Op.
func (u *UnionDisjoint) Label() string { return "∪̇" }

// UnionAll is bag union (concatenation) of two inputs with equal schemas.
// Unlike UnionDisjoint it carries no disjointness claim: the S2 baseline's
// OR-expansion unions overlapping branches and relies on a Distinct above.
type UnionAll struct {
	L, R Op
}

// NewUnionAll builds a bag union; it panics on schema mismatch.
func NewUnionAll(l, r Op) *UnionAll {
	if !l.Schema().Equal(r.Schema()) {
		panic(fmt.Sprintf("algebra: union-all schema mismatch: %s vs %s", l.Schema(), r.Schema()))
	}
	return &UnionAll{L: l, R: r}
}

// Schema implements Op.
func (u *UnionAll) Schema() *storage.Schema { return u.L.Schema() }

// Inputs implements Op.
func (u *UnionAll) Inputs() []Op { return []Op{u.L, u.R} }

// Label implements Op.
func (u *UnionAll) Label() string { return "∪all" }

// Distinct removes duplicate tuples (Identical semantics).
type Distinct struct {
	Child Op
}

// NewDistinct builds a duplicate-elimination node.
func NewDistinct(child Op) *Distinct { return &Distinct{Child: child} }

// Schema implements Op.
func (d *Distinct) Schema() *storage.Schema { return d.Child.Schema() }

// Inputs implements Op.
func (d *Distinct) Inputs() []Op { return []Op{d.Child} }

// Label implements Op.
func (d *Distinct) Label() string { return "distinct" }

// Limit keeps the first N input tuples (applied after Sort for the SQL
// ORDER BY … LIMIT pattern).
type Limit struct {
	Child Op
	N     int64
}

// NewLimit builds a limit node.
func NewLimit(child Op, n int64) *Limit { return &Limit{Child: child, N: n} }

// Schema implements Op.
func (l *Limit) Schema() *storage.Schema { return l.Child.Schema() }

// Inputs implements Op.
func (l *Limit) Inputs() []Op { return []Op{l.Child} }

// Label implements Op.
func (l *Limit) Label() string { return fmt.Sprintf("limit[%d]", l.N) }

// SortKey is one ORDER BY key.
type SortKey struct {
	Attr string
	Desc bool
}

// Sort orders tuples by the keys (stable; NULLs first).
type Sort struct {
	Child Op
	Keys  []SortKey
}

// NewSort builds a sort node.
func NewSort(child Op, keys []SortKey) *Sort { return &Sort{Child: child, Keys: keys} }

// Schema implements Op.
func (s *Sort) Schema() *storage.Schema { return s.Child.Schema() }

// Inputs implements Op.
func (s *Sort) Inputs() []Op { return []Op{s.Child} }

// Label implements Op.
func (s *Sort) Label() string {
	out := "sort["
	for i, k := range s.Keys {
		if i > 0 {
			out += ", "
		}
		out += k.Attr
		if k.Desc {
			out += " DESC"
		}
	}
	return out + "]"
}
