// Package algebra defines disqo's logical relational algebra: the core
// operators (σ, Π, ρ, ×, ⋈, ∪), the five extensions the paper introduces
// in Fig. 1 (unary and binary grouping Γ, leftouterjoin with defaults,
// numbering ν, map χ), and the bypass operators σ± and ⋈± whose positive
// and negative output streams make unnesting in the presence of
// disjunction possible.
//
// As in the paper, subscripts may contain algebraic expressions: the
// expression language includes scalar and quantified subqueries whose
// operand is itself a plan (ScalarSubquery, QuantSubquery). The canonical
// translation of a nested SQL query is a Select whose predicate embeds
// such subplans; the rewriter in internal/rewrite removes them.
package algebra

import (
	"fmt"
	"strings"

	"disqo/internal/agg"
	"disqo/internal/types"
)

// Expr is a scalar expression evaluated against an environment of named
// attribute bindings (the current tuple, chained to outer tuples for
// correlated evaluation).
type Expr interface {
	// String renders the expression in SQL-like syntax for EXPLAIN.
	String() string
	// Columns appends the names of all column references in the
	// expression, including those inside subquery plans that are free
	// there (i.e. the subquery's correlation attributes).
	Columns(into []string) []string
}

// ColRef references an attribute by its qualified name.
type ColRef struct {
	Name string
}

// Col is shorthand for a column reference expression.
func Col(name string) *ColRef { return &ColRef{Name: name} }

// String implements Expr.
func (c *ColRef) String() string { return c.Name }

// Columns implements Expr.
func (c *ColRef) Columns(into []string) []string { return append(into, c.Name) }

// ConstExpr is a literal value.
type ConstExpr struct {
	Val types.Value
}

// Const wraps a value as a literal expression.
func Const(v types.Value) *ConstExpr { return &ConstExpr{Val: v} }

// ConstInt is shorthand for an integer literal expression.
func ConstInt(v int64) *ConstExpr { return Const(types.NewInt(v)) }

// String implements Expr.
func (c *ConstExpr) String() string { return c.Val.String() }

// Columns implements Expr.
func (c *ConstExpr) Columns(into []string) []string { return into }

// CmpExpr is a comparison L θ R.
type CmpExpr struct {
	Op   types.CompareOp
	L, R Expr
}

// Cmp builds a comparison expression.
func Cmp(op types.CompareOp, l, r Expr) *CmpExpr { return &CmpExpr{Op: op, L: l, R: r} }

// String implements Expr.
func (c *CmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// Columns implements Expr.
func (c *CmpExpr) Columns(into []string) []string {
	return c.R.Columns(c.L.Columns(into))
}

// AndExpr is Kleene conjunction.
type AndExpr struct{ L, R Expr }

// And builds a conjunction; nil operands are dropped and a fully nil
// conjunction is the constant TRUE.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		switch {
		case e == nil:
		case out == nil:
			out = e
		default:
			out = &AndExpr{L: out, R: e}
		}
	}
	if out == nil {
		return Const(types.NewBool(true))
	}
	return out
}

// String implements Expr.
func (a *AndExpr) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Columns implements Expr.
func (a *AndExpr) Columns(into []string) []string { return a.R.Columns(a.L.Columns(into)) }

// OrExpr is Kleene disjunction.
type OrExpr struct{ L, R Expr }

// Or builds a disjunction from one or more operands.
func Or(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		switch {
		case e == nil:
		case out == nil:
			out = e
		default:
			out = &OrExpr{L: out, R: e}
		}
	}
	if out == nil {
		return Const(types.NewBool(false))
	}
	return out
}

// String implements Expr.
func (o *OrExpr) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Columns implements Expr.
func (o *OrExpr) Columns(into []string) []string { return o.R.Columns(o.L.Columns(into)) }

// NotExpr is Kleene negation.
type NotExpr struct{ E Expr }

// Not negates an expression.
func Not(e Expr) *NotExpr { return &NotExpr{E: e} }

// String implements Expr.
func (n *NotExpr) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// Columns implements Expr.
func (n *NotExpr) Columns(into []string) []string { return n.E.Columns(into) }

// ArithExpr is binary arithmetic.
type ArithExpr struct {
	Op   types.ArithOp
	L, R Expr
}

// Arith builds an arithmetic expression.
func Arith(op types.ArithOp, l, r Expr) *ArithExpr { return &ArithExpr{Op: op, L: l, R: r} }

// String implements Expr.
func (a *ArithExpr) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Columns implements Expr.
func (a *ArithExpr) Columns(into []string) []string { return a.R.Columns(a.L.Columns(into)) }

// LikeExpr is the LIKE predicate (negated via NotExpr).
type LikeExpr struct{ L, Pattern Expr }

// Like builds a LIKE predicate.
func Like(l, pattern Expr) *LikeExpr { return &LikeExpr{L: l, Pattern: pattern} }

// String implements Expr.
func (l *LikeExpr) String() string { return fmt.Sprintf("(%s LIKE %s)", l.L, l.Pattern) }

// Columns implements Expr.
func (l *LikeExpr) Columns(into []string) []string { return l.Pattern.Columns(l.L.Columns(into)) }

// IsNullExpr is the IS NULL predicate (IS NOT NULL via NotExpr).
type IsNullExpr struct{ E Expr }

// IsNull builds an IS NULL predicate.
func IsNull(e Expr) *IsNullExpr { return &IsNullExpr{E: e} }

// String implements Expr.
func (i *IsNullExpr) String() string { return fmt.Sprintf("(%s IS NULL)", i.E) }

// Columns implements Expr.
func (i *IsNullExpr) Columns(into []string) []string { return i.E.Columns(into) }

// AggCombineExpr applies the decomposition combiner fO of an aggregate
// kind to two partial results (Eqv. 4's map operator χ g:fO(g1,g2)).
// NULL partials act as the identity, matching agg.Combine.
type AggCombineExpr struct {
	Kind agg.Kind
	L, R Expr
}

// AggCombine builds an fO combiner expression.
func AggCombine(k agg.Kind, l, r Expr) *AggCombineExpr { return &AggCombineExpr{Kind: k, L: l, R: r} }

// String implements Expr.
func (a *AggCombineExpr) String() string {
	return fmt.Sprintf("%s_O(%s, %s)", strings.ToLower(a.Kind.String()), a.L, a.R)
}

// Columns implements Expr.
func (a *AggCombineExpr) Columns(into []string) []string { return a.R.Columns(a.L.Columns(into)) }

// ScalarSubquery embeds a nested query block in an expression, exactly as
// the canonical SQL translation produces it: an aggregate f applied to
// the result of an algebraic plan whose free attributes are bound by the
// enclosing tuple. Evaluating it is the nested-loop strategy the paper's
// unnesting eliminates.
type ScalarSubquery struct {
	Agg agg.Spec
	// Arg is the aggregate's argument, evaluated in the subplan's output
	// schema (plus the outer environment). It is nil for Star specs.
	Arg Expr
	// Plan is the subquery block's algebraic translation.
	Plan Op
}

// Subquery builds a scalar subquery expression.
func Subquery(spec agg.Spec, arg Expr, plan Op) *ScalarSubquery {
	return &ScalarSubquery{Agg: spec, Arg: arg, Plan: plan}
}

// String implements Expr.
func (s *ScalarSubquery) String() string {
	arg := "*"
	if s.Arg != nil {
		arg = s.Arg.String()
	}
	mod := ""
	if s.Agg.Distinct {
		mod = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s){%s}", s.Agg.Kind, mod, arg, PlanInline(s.Plan))
}

// Columns implements Expr: the subquery contributes its *free* columns —
// references its own plan does not supply — which are exactly the
// correlation attributes.
func (s *ScalarSubquery) Columns(into []string) []string {
	return append(into, FreeColumns(s.Plan)...)
}

// Quantifier enumerates the table-subquery linking operators of the
// technical-report extension.
type Quantifier uint8

const (
	// Exists is EXISTS(subquery).
	Exists Quantifier = iota
	// NotExists is NOT EXISTS(subquery).
	NotExists
	// In is expr IN (subquery).
	In
	// NotIn is expr NOT IN (subquery).
	NotIn
)

// String renders the quantifier keyword.
func (q Quantifier) String() string {
	switch q {
	case Exists:
		return "EXISTS"
	case NotExists:
		return "NOT EXISTS"
	case In:
		return "IN"
	default:
		return "NOT IN"
	}
}

// QuantSubquery is a quantified table subquery: EXISTS/NOT EXISTS take no
// left operand; IN/NOT IN compare L against the subquery's single output
// column.
type QuantSubquery struct {
	Quant Quantifier
	L     Expr // nil for EXISTS/NOT EXISTS
	Plan  Op
}

// Quant builds a quantified subquery predicate.
func Quant(q Quantifier, l Expr, plan Op) *QuantSubquery {
	return &QuantSubquery{Quant: q, L: l, Plan: plan}
}

// String implements Expr.
func (q *QuantSubquery) String() string {
	if q.L == nil {
		return fmt.Sprintf("%s{%s}", q.Quant, PlanInline(q.Plan))
	}
	return fmt.Sprintf("(%s %s {%s})", q.L, q.Quant, PlanInline(q.Plan))
}

// Columns implements Expr.
func (q *QuantSubquery) Columns(into []string) []string {
	if q.L != nil {
		into = q.L.Columns(into)
	}
	return append(into, FreeColumns(q.Plan)...)
}

// AllAnyExpr is a quantified comparison L θ ALL|ANY (plan): the Kleene
// fold of L θ y over the plan's single output column — AND for ALL
// (vacuously TRUE on empty input), OR for ANY (vacuously FALSE).
type AllAnyExpr struct {
	Op   types.CompareOp
	All  bool
	L    Expr
	Plan Op
}

// AllAny builds a quantified comparison predicate.
func AllAny(op types.CompareOp, all bool, l Expr, plan Op) *AllAnyExpr {
	return &AllAnyExpr{Op: op, All: all, L: l, Plan: plan}
}

// String implements Expr.
func (a *AllAnyExpr) String() string {
	quant := "ANY"
	if a.All {
		quant = "ALL"
	}
	return fmt.Sprintf("(%s %s %s {%s})", a.L, a.Op, quant, PlanInline(a.Plan))
}

// Columns implements Expr.
func (a *AllAnyExpr) Columns(into []string) []string {
	return append(a.L.Columns(into), FreeColumns(a.Plan)...)
}

// SplitConjuncts flattens nested ANDs into a conjunct list.
func SplitConjuncts(e Expr) []Expr {
	if a, ok := e.(*AndExpr); ok {
		return append(SplitConjuncts(a.L), SplitConjuncts(a.R)...)
	}
	return []Expr{e}
}

// SplitDisjuncts flattens nested ORs into a disjunct list.
func SplitDisjuncts(e Expr) []Expr {
	if o, ok := e.(*OrExpr); ok {
		return append(SplitDisjuncts(o.L), SplitDisjuncts(o.R)...)
	}
	return []Expr{e}
}

// HasSubquery reports whether the expression contains any subquery
// (scalar or quantified) at any depth, not descending into subplans.
func HasSubquery(e Expr) bool {
	switch x := e.(type) {
	case *ScalarSubquery, *QuantSubquery, *AllAnyExpr:
		return true
	case *CmpExpr:
		return HasSubquery(x.L) || HasSubquery(x.R)
	case *AndExpr:
		return HasSubquery(x.L) || HasSubquery(x.R)
	case *OrExpr:
		return HasSubquery(x.L) || HasSubquery(x.R)
	case *NotExpr:
		return HasSubquery(x.E)
	case *ArithExpr:
		return HasSubquery(x.L) || HasSubquery(x.R)
	case *LikeExpr:
		return HasSubquery(x.L) || HasSubquery(x.Pattern)
	case *IsNullExpr:
		return HasSubquery(x.E)
	case *AggCombineExpr:
		return HasSubquery(x.L) || HasSubquery(x.R)
	default:
		return false
	}
}
