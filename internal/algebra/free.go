package algebra

import "sort"

// exprsOf returns the expressions attached directly to an operator.
func exprsOf(op Op) []Expr {
	switch x := op.(type) {
	case *Select:
		return []Expr{x.Pred}
	case *BypassSelect:
		return []Expr{x.Pred}
	case *Join:
		return []Expr{x.Pred}
	case *BypassJoin:
		return []Expr{x.Pred}
	case *LeftOuterJoin:
		return []Expr{x.Pred}
	case *SemiJoin:
		return []Expr{x.Pred}
	case *AntiJoin:
		return []Expr{x.Pred}
	case *MapOp:
		return []Expr{x.Expr}
	case *GroupBy:
		out := make([]Expr, 0, len(x.Aggs))
		for _, a := range x.Aggs {
			if a.Arg != nil {
				out = append(out, a.Arg)
			}
		}
		return out
	case *BinaryGroup:
		out := []Expr{x.Pred}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				out = append(out, a.Arg)
			}
		}
		return out
	default:
		return nil
	}
}

// Exprs returns the expressions attached directly to an operator — the
// exported view physical lowering uses to find nested subquery plans.
func Exprs(op Op) []Expr { return exprsOf(op) }

// Subplans returns every nested query-block plan embedded in the
// expression, at any depth, in left-to-right discovery order. It does
// not descend into the subplans themselves; callers recurse via the
// plans' own operators when they need the full closure.
func Subplans(e Expr) []Op {
	var out []Op
	collectSubplans(e, &out)
	return out
}

func collectSubplans(e Expr, out *[]Op) {
	switch x := e.(type) {
	case *ScalarSubquery:
		*out = append(*out, x.Plan)
		if x.Arg != nil {
			collectSubplans(x.Arg, out)
		}
	case *QuantSubquery:
		if x.L != nil {
			collectSubplans(x.L, out)
		}
		*out = append(*out, x.Plan)
	case *AllAnyExpr:
		if x.L != nil {
			collectSubplans(x.L, out)
		}
		*out = append(*out, x.Plan)
	case *CmpExpr:
		collectSubplans(x.L, out)
		collectSubplans(x.R, out)
	case *AndExpr:
		collectSubplans(x.L, out)
		collectSubplans(x.R, out)
	case *OrExpr:
		collectSubplans(x.L, out)
		collectSubplans(x.R, out)
	case *NotExpr:
		collectSubplans(x.E, out)
	case *ArithExpr:
		collectSubplans(x.L, out)
		collectSubplans(x.R, out)
	case *LikeExpr:
		collectSubplans(x.L, out)
		collectSubplans(x.Pattern, out)
	case *IsNullExpr:
		collectSubplans(x.E, out)
	case *AggCombineExpr:
		collectSubplans(x.L, out)
		collectSubplans(x.R, out)
	}
}

// FreeColumns returns the sorted, deduplicated set of attribute names the
// plan references but does not itself produce — the correlation
// attributes when the plan is a nested query block. F(e) in the paper's
// notation. Names produced anywhere inside the plan are not free even
// when referenced from a sibling subtree of a DAG.
func FreeColumns(plan Op) []string {
	free := map[string]bool{}
	collectFree(plan, free)
	produced := map[string]bool{}
	collectProduced(plan, produced)
	out := make([]string, 0, len(free))
	for n := range free {
		if !produced[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func collectFree(op Op, free map[string]bool) {
	// Attributes available to this operator's expressions: the union of
	// its inputs' schemas (expressions see the concatenated tuple).
	avail := map[string]bool{}
	for _, in := range op.Inputs() {
		for _, a := range in.Schema().Attrs() {
			avail[a] = true
		}
	}
	for _, e := range exprsOf(op) {
		for _, c := range e.Columns(nil) {
			if !avail[c] {
				free[c] = true
			}
		}
	}
	for _, in := range op.Inputs() {
		collectFree(in, free)
	}
}

// Correlated reports whether the plan references outer attributes.
func Correlated(plan Op) bool {
	return len(FreeColumns(plan)) > 0
}

func collectProduced(op Op, produced map[string]bool) {
	for _, a := range op.Schema().Attrs() {
		produced[a] = true
	}
	for _, in := range op.Inputs() {
		collectProduced(in, produced)
	}
}
