package algebra

import (
	"fmt"
	"strings"
)

// PlanInline renders a plan as a compact one-line expression, used inside
// expression strings for nested subqueries.
func PlanInline(op Op) string {
	ins := op.Inputs()
	switch len(ins) {
	case 0:
		return op.Label()
	case 1:
		return fmt.Sprintf("%s(%s)", op.Label(), PlanInline(ins[0]))
	default:
		parts := make([]string, len(ins))
		for i, in := range ins {
			parts[i] = PlanInline(in)
		}
		return fmt.Sprintf("%s(%s)", op.Label(), strings.Join(parts, ", "))
	}
}

// Explain renders a plan as an indented tree. Operators reached through
// more than one path (the DAG sharing bypass plans introduce) are printed
// once in full and subsequently referenced as "↑ see #n", so the printout
// makes the plan's DAG structure visible — the property §5/[23] of the
// paper discuss.
func Explain(root Op) string { return ExplainAnnotated(root, nil) }

// ExplainAnnotated renders like Explain, appending annotate(op) (when
// non-empty) to each operator line — EXPLAIN ANALYZE output uses it to
// attach actual row counts.
func ExplainAnnotated(root Op, annotate func(Op) string) string {
	counts := map[Op]int{}
	countRefs(root, counts)
	var b strings.Builder
	ids := map[Op]int{}
	nextID := 1
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		indent := strings.Repeat("  ", depth)
		if id, seen := ids[op]; seen {
			fmt.Fprintf(&b, "%s↑ see #%d %s\n", indent, id, op.Label())
			return
		}
		label := op.Label()
		if annotate != nil {
			if extra := annotate(op); extra != "" {
				label += "  " + extra
			}
		}
		if counts[op] > 1 {
			ids[op] = nextID
			fmt.Fprintf(&b, "%s#%d %s\n", indent, nextID, label)
			nextID++
		} else {
			fmt.Fprintf(&b, "%s%s\n", indent, label)
		}
		for _, in := range op.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

func countRefs(op Op, counts map[Op]int) {
	counts[op]++
	if counts[op] > 1 {
		return
	}
	for _, in := range op.Inputs() {
		countRefs(in, counts)
	}
}

// Walk visits every operator of the plan exactly once (pre-order,
// DAG-aware) and calls fn; returning false prunes the node's inputs.
func Walk(root Op, fn func(Op) bool) {
	seen := map[Op]bool{}
	var rec func(Op)
	rec = func(op Op) {
		if seen[op] {
			return
		}
		seen[op] = true
		if !fn(op) {
			return
		}
		for _, in := range op.Inputs() {
			rec(in)
		}
	}
	rec(root)
}

// CountOps returns the number of distinct operators in the DAG.
func CountOps(root Op) int {
	n := 0
	Walk(root, func(Op) bool { n++; return true })
	return n
}

// ContainsSubquery reports whether any operator in the plan still embeds
// a nested subquery in one of its expressions — i.e. the plan is not
// fully unnested. It does not descend into the subplans themselves.
func ContainsSubquery(root Op) bool {
	found := false
	Walk(root, func(op Op) bool {
		for _, e := range exprsOf(op) {
			if HasSubquery(e) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
