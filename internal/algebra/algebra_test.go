package algebra

import (
	"strings"
	"testing"

	"disqo/internal/agg"
	"disqo/internal/storage"
	"disqo/internal/types"
)

func scanR() *Scan {
	return NewScan("r", "r", storage.NewSchema("r.a1", "r.a2"))
}

func scanS() *Scan {
	return NewScan("s", "s", storage.NewSchema("s.b1", "s.b2"))
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Col("r.a1"), "r.a1"},
		{ConstInt(5), "5"},
		{Const(types.NewString("x")), "'x'"},
		{Cmp(types.GT, Col("a"), ConstInt(1)), "(a > 1)"},
		{And(Col("a"), Col("b")), "(a AND b)"},
		{Or(Col("a"), Col("b")), "(a OR b)"},
		{Not(Col("a")), "(NOT a)"},
		{Arith(types.Add, Col("a"), ConstInt(2)), "(a + 2)"},
		{Like(Col("a"), Const(types.NewString("%x"))), "(a LIKE '%x')"},
		{IsNull(Col("a")), "(a IS NULL)"},
		{AggCombine(agg.Sum, Col("g1"), Col("g2")), "sum_O(g1, g2)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAndOrBuilders(t *testing.T) {
	if And().String() != "TRUE" {
		t.Error("empty And must be TRUE")
	}
	if Or().String() != "FALSE" {
		t.Error("empty Or must be FALSE")
	}
	a := Col("a")
	if And(nil, a, nil) != a {
		t.Error("single operand And must collapse")
	}
	if Or(a) != a {
		t.Error("single operand Or must collapse")
	}
}

func TestSplitConjunctsDisjuncts(t *testing.T) {
	a, b, c := Col("a"), Col("b"), Col("c")
	conj := And(a, And(b, c))
	if got := SplitConjuncts(conj); len(got) != 3 {
		t.Errorf("SplitConjuncts = %d parts", len(got))
	}
	disj := Or(Or(a, b), c)
	if got := SplitDisjuncts(disj); len(got) != 3 {
		t.Errorf("SplitDisjuncts = %d parts", len(got))
	}
	if got := SplitConjuncts(a); len(got) != 1 {
		t.Errorf("atom conjuncts = %d", len(got))
	}
}

func TestHasSubquery(t *testing.T) {
	sub := Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, scanS())
	if !HasSubquery(Cmp(types.EQ, Col("a"), sub)) {
		t.Error("subquery in cmp not detected")
	}
	if !HasSubquery(And(Col("x"), Or(Col("y"), Quant(Exists, nil, scanS())))) {
		t.Error("quantified subquery not detected")
	}
	if HasSubquery(And(Col("x"), Col("y"))) {
		t.Error("false positive")
	}
}

func TestFreeColumns(t *testing.T) {
	// σ_{r.a2 = s.b2}(S) is correlated on r.a2.
	sel := NewSelect(scanS(), Cmp(types.EQ, Col("r.a2"), Col("s.b2")))
	free := FreeColumns(sel)
	if len(free) != 1 || free[0] != "r.a2" {
		t.Errorf("free = %v", free)
	}
	if !Correlated(sel) {
		t.Error("Correlated must be true")
	}
	if Correlated(scanS()) {
		t.Error("scan must be uncorrelated")
	}
	// Subquery free columns propagate through expressions.
	sub := Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, sel)
	outer := NewSelect(scanR(), Cmp(types.EQ, Col("r.a1"), sub))
	if Correlated(outer) {
		t.Errorf("outer plan provides r.a2; free = %v", FreeColumns(outer))
	}
}

func TestSchemaPropagation(t *testing.T) {
	r, s := scanR(), scanS()
	j := NewJoin(r, s, Cmp(types.EQ, Col("r.a2"), Col("s.b2")))
	if j.Schema().Len() != 4 {
		t.Errorf("join schema = %s", j.Schema())
	}
	g := NewGroupBy(s, []string{"s.b2"}, []AggItem{{Out: "g", Spec: agg.Spec{Kind: agg.Count, Star: true}}}, false)
	if g.Schema().String() != "[s.b2, g]" {
		t.Errorf("Γ schema = %s", g.Schema())
	}
	bg := NewBinaryGroup(r, s, Cmp(types.EQ, Col("r.a2"), Col("s.b2")),
		[]AggItem{{Out: "g", Spec: agg.Spec{Kind: agg.Count, Star: true}}})
	if bg.Schema().String() != "[r.a1, r.a2, g]" {
		t.Errorf("Γ² schema = %s", bg.Schema())
	}
	m := NewMap(r, "x", ConstInt(1))
	if m.Schema().String() != "[r.a1, r.a2, x]" {
		t.Errorf("χ schema = %s", m.Schema())
	}
	n := NewNumber(r, "t")
	if n.Schema().String() != "[r.a1, r.a2, t]" {
		t.Errorf("ν schema = %s", n.Schema())
	}
}

func TestProjectPanicsOnMissingAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProject(scanR(), []string{"zz"})
}

func TestUnionSchemaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUnionDisjoint(scanR(), scanS())
}

func TestLabels(t *testing.T) {
	bp := NewBypassSelect(scanR(), Cmp(types.GT, Col("r.a1"), ConstInt(0)))
	if !strings.Contains(bp.Label(), "σ±") {
		t.Errorf("bypass label = %s", bp.Label())
	}
	if Pos(bp).Label() != "+stream" || Neg(bp).Label() != "−stream" {
		t.Error("stream labels")
	}
	oj := NewLeftOuterJoin(scanR(), scanS(), Cmp(types.EQ, Col("r.a2"), Col("s.b2")),
		[]Default{{Attr: "g", Val: types.NewInt(0)}})
	if !strings.Contains(oj.Label(), "g:0") {
		t.Errorf("outerjoin label = %s", oj.Label())
	}
	alias := NewScan("r", "r2", storage.NewSchema("r2.a1"))
	if !strings.Contains(alias.Label(), "AS r2") {
		t.Errorf("aliased scan label = %s", alias.Label())
	}
}

func TestExplainMarksSharedNodes(t *testing.T) {
	bp := NewBypassSelect(scanR(), Cmp(types.GT, Col("r.a1"), ConstInt(0)))
	u := NewUnionDisjoint(Pos(bp), Neg(bp))
	out := Explain(u)
	if !strings.Contains(out, "#1") || !strings.Contains(out, "↑ see #1") {
		t.Errorf("explain must mark DAG sharing:\n%s", out)
	}
}

func TestWalkVisitsDAGNodesOnce(t *testing.T) {
	bp := NewBypassSelect(scanR(), Cmp(types.GT, Col("r.a1"), ConstInt(0)))
	u := NewUnionDisjoint(Pos(bp), Neg(bp))
	// Nodes: union, pos-stream, neg-stream, bypass, scan = 5.
	if n := CountOps(u); n != 5 {
		t.Errorf("CountOps = %d, want 5", n)
	}
}

func TestContainsSubquery(t *testing.T) {
	sub := Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil,
		NewSelect(scanS(), Cmp(types.EQ, Col("r.a2"), Col("s.b2"))))
	sel := NewSelect(scanR(), Cmp(types.EQ, Col("r.a1"), sub))
	if !ContainsSubquery(sel) {
		t.Error("nested plan not detected")
	}
	if ContainsSubquery(scanR()) {
		t.Error("false positive")
	}
}

func TestPlanInline(t *testing.T) {
	sel := NewSelect(scanR(), Cmp(types.GT, Col("r.a1"), ConstInt(0)))
	got := PlanInline(sel)
	if !strings.Contains(got, "scan(r)") || !strings.HasPrefix(got, "σ") {
		t.Errorf("PlanInline = %s", got)
	}
	j := NewJoin(scanR(), scanS(), nil)
	if !strings.Contains(PlanInline(j), ", ") {
		t.Errorf("binary PlanInline = %s", PlanInline(j))
	}
}

func TestRenameError(t *testing.T) {
	if _, err := NewRename(scanR(), [][2]string{{"x", "missing"}}); err == nil {
		t.Error("rename of missing attribute must error")
	}
}

func TestQuantifierStrings(t *testing.T) {
	if Exists.String() != "EXISTS" || NotExists.String() != "NOT EXISTS" ||
		In.String() != "IN" || NotIn.String() != "NOT IN" {
		t.Error("quantifier strings")
	}
	q := Quant(In, Col("x"), scanS())
	if !strings.Contains(q.String(), "IN") {
		t.Errorf("quant string = %s", q)
	}
	e := Quant(Exists, nil, scanS())
	if !strings.HasPrefix(e.String(), "EXISTS") {
		t.Errorf("exists string = %s", e)
	}
}

func TestAggItemLabel(t *testing.T) {
	it := AggItem{Out: "g", Spec: agg.Spec{Kind: agg.Count, Distinct: true, Star: true}}
	if it.Label() != "g:COUNT(DISTINCT *)" {
		t.Errorf("label = %s", it.Label())
	}
	it2 := AggItem{Out: "m", Spec: agg.Spec{Kind: agg.Min}, Arg: Col("x")}
	if it2.Label() != "m:MIN(x)" {
		t.Errorf("label = %s", it2.Label())
	}
}
