// Package faultinject is a deterministic fault-injection layer for the
// executor. It is build-tag-free: an *Injector travels through
// exec.Options and a nil injector costs one branch per visit, so
// production paths pay nothing when injection is off.
//
// The executor reports each passage through an instrumented point as a
// "visit" to a (Site, node-ID) key. Visits are counted under a mutex,
// so the Nth visit to a key is well defined even under the morsel
// worker pool; the counts themselves depend only on the plan shape and
// the data, never on worker scheduling, which is what makes armed
// faults reproducible at any worker count.
//
// Two firing modes exist:
//
//   - Armed mode (Arm): fire exactly once, at the Nth visit to one key,
//     either as an error return or as a panic. Chaos tests first run a
//     query with a fresh recording injector, read Visits(), then replay
//     the query once per (key, visit) arming each point in turn.
//   - Seeded mode (NewSeeded): fire on a pseudo-random but fully
//     deterministic subset of visits — a 64-bit mix of (seed, key,
//     ordinal) selects roughly one visit in `period`. Useful for
//     soak-style sweeps where enumerating every point is too slow.
//
// Every injected fault wraps ErrInjected, so callers assert surfacing
// with errors.Is(err, faultinject.ErrInjected) regardless of how many
// operator or query-level wrappers accumulated on the way out.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
)

// Site classifies the executor locations that report visits.
type Site uint8

const (
	// SiteOp is operator-evaluation entry: one visit per evalMemo call
	// (memo hits included), attributed to the operator's node ID.
	SiteOp Site = iota
	// SiteMorsel is a morsel boundary in the worker pool: one visit per
	// claimed morsel, attributed to the operator that fanned out.
	SiteMorsel
	// SiteMemoFill is the store of a cacheable operator result into the
	// shared memo, attributed to the operator being cached.
	SiteMemoFill
	// SiteVec is the entry of a vectorized kernel (after its inputs
	// evaluated, before morsels fan out), attributed to the operator
	// running vectorized.
	SiteVec
	// SiteWALAppend is a write-ahead-log record append, visited before
	// any frame byte reaches the log file. Disk site: node is -1.
	SiteWALAppend
	// SiteWALSync is a WAL fsync, visited before the kernel sync call.
	// Disk site: node is -1.
	SiteWALSync
	// SiteSnapshot is visited three times per checkpoint: visit 1 before
	// the snapshot temp file is written, visit 2 after the atomic rename
	// publishes it (before log truncation), visit 3 after truncation.
	// Disk site: node is -1.
	SiteSnapshot
	// SiteAccept is a server accept: one visit per accepted TCP
	// connection, before any session state exists. Network site: node
	// is -1.
	SiteAccept
	// SiteConnRead is a completed request frame read off a client
	// connection, visited before the frame is parsed. A fired fault is
	// treated as a connection loss. Network site: node is -1.
	SiteConnRead
	// SiteConnWrite is a response frame write to a client connection,
	// visited before any byte is written. A fired fault is treated as a
	// write failure and tears the session down. Network site: node is -1.
	SiteConnWrite
	// SiteReplicaApply is the replica's apply loop: one visit per
	// replication frame (snapshot, record, or heartbeat) before it is
	// applied. Network site: node is -1.
	SiteReplicaApply
)

func (s Site) String() string {
	switch s {
	case SiteOp:
		return "op"
	case SiteMorsel:
		return "morsel"
	case SiteMemoFill:
		return "memo-fill"
	case SiteVec:
		return "vec"
	case SiteWALAppend:
		return "wal-append"
	case SiteWALSync:
		return "wal-sync"
	case SiteSnapshot:
		return "snapshot"
	case SiteAccept:
		return "accept"
	case SiteConnRead:
		return "conn-read"
	case SiteConnWrite:
		return "conn-write"
	case SiteReplicaApply:
		return "replica-apply"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// ParseSite resolves a site name (the String form) back to a Site; the
// crash-chaos harness passes sites to its child process by name.
func ParseSite(name string) (Site, bool) {
	for _, s := range []Site{SiteOp, SiteMorsel, SiteMemoFill, SiteVec, SiteWALAppend, SiteWALSync, SiteSnapshot, SiteAccept, SiteConnRead, SiteConnWrite, SiteReplicaApply} {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// ErrInjected is the sentinel every injected fault wraps (including the
// value thrown by panic-mode faults, which is an error wrapping it).
var ErrInjected = errors.New("faultinject: injected fault")

// ErrShortWrite is the sentinel for short-write-mode faults at disk
// sites: the instrumented writer must write a strict prefix of the
// intended bytes and then fail with the returned error, leaving a
// genuinely torn record behind. It wraps ErrInjected.
var ErrShortWrite = fmt.Errorf("%w: short write", ErrInjected)

// Mode selects what an armed fault does when it fires.
type Mode uint8

const (
	// ModeError returns an error wrapping ErrInjected from Visit.
	ModeError Mode = iota
	// ModePanic panics with an error wrapping ErrInjected.
	ModePanic
	// ModeShortWrite returns an error wrapping ErrShortWrite; disk-site
	// callers (the WAL) respond by persisting a torn prefix of the write
	// before surfacing the error.
	ModeShortWrite
	// ModeKill SIGKILLs the current process — the crash-chaos harness's
	// way of dying at an exact disk-site visit with no chance for
	// deferred cleanup, exactly like a power cut.
	ModeKill
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeShortWrite:
		return "short-write"
	case ModeKill:
		return "kill"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Key identifies one class of injection point: a site plus the physical
// node ID that visited it. Node is -1 when the visit could not be
// attributed to a plan node.
type Key struct {
	Site Site
	Node int
}

func (k Key) String() string { return fmt.Sprintf("%s@%d", k.Site, k.Node) }

type arm struct {
	nth  int64
	mode Mode
}

// Injector counts visits to injection points and fires armed or seeded
// faults. The zero value is not usable; construct with New or
// NewSeeded. All methods are safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	visits map[Key]int64
	arms   map[Key]arm
	fired  int64

	// seeded mode; period == 0 disables it
	seed   uint64
	period uint64
}

// New returns an injector in recording mode: it counts visits and fires
// nothing until Arm is called.
func New() *Injector {
	return &Injector{visits: make(map[Key]int64), arms: make(map[Key]arm)}
}

// NewSeeded returns an injector that fires an error (never a panic) on
// a deterministic pseudo-random subset of visits: each visit fires with
// probability 1/period, decided by mixing (seed, key, ordinal). The
// same seed and workload fire the same faults on every run.
func NewSeeded(seed uint64, period uint64) *Injector {
	in := New()
	in.seed = seed
	if period == 0 {
		period = 1
	}
	in.period = period
	return in
}

// Arm schedules a fault at the nth (1-based) visit to (site, node): an
// error return, or a panic when panics is set. Re-arming the same key
// replaces the previous arm. Arming is typically done between queries,
// but is safe at any time.
func (in *Injector) Arm(site Site, node int, nth int64, panics bool) {
	mode := ModeError
	if panics {
		mode = ModePanic
	}
	in.ArmMode(site, node, nth, mode)
}

// ArmMode is Arm with an explicit firing mode — the disk sites use
// ModeShortWrite for torn-write simulation and ModeKill for
// crash-chaos kill points.
func (in *Injector) ArmMode(site Site, node int, nth int64, mode Mode) {
	in.mu.Lock()
	in.arms[Key{Site: site, Node: node}] = arm{nth: nth, mode: mode}
	in.mu.Unlock()
}

// Disarm removes any armed fault on (site, node).
func (in *Injector) Disarm(site Site, node int) {
	in.mu.Lock()
	delete(in.arms, Key{Site: site, Node: node})
	in.mu.Unlock()
}

// Reset clears visit counts and the fired counter but keeps arms and
// the seeded configuration, so one injector can replay many queries.
func (in *Injector) Reset() {
	in.mu.Lock()
	in.visits = make(map[Key]int64)
	in.fired = 0
	in.mu.Unlock()
}

// Visit records one visit to (site, node) and fires the due fault, if
// any: armed panics panic with an error wrapping ErrInjected; armed and
// seeded errors are returned wrapping ErrInjected.
func (in *Injector) Visit(site Site, node int) error {
	key := Key{Site: site, Node: node}
	in.mu.Lock()
	in.visits[key]++
	n := in.visits[key]
	var fire bool
	mode := ModeError
	if a, ok := in.arms[key]; ok && n == a.nth {
		fire, mode = true, a.mode
	} else if in.period > 1 && mix(in.seed, key, n)%in.period == 0 {
		fire = true
	}
	if fire {
		in.fired++
	}
	in.mu.Unlock()
	if !fire {
		return nil
	}
	switch mode {
	case ModePanic:
		panic(fmt.Errorf("%w at %s visit %d", ErrInjected, key, n))
	case ModeShortWrite:
		return fmt.Errorf("%w at %s visit %d", ErrShortWrite, key, n)
	case ModeKill:
		// A real crash: no deferred cleanup, no flushing, no unwinding.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: wait for the signal to land
	}
	return fmt.Errorf("%w at %s visit %d", ErrInjected, key, n)
}

// Visits returns a snapshot of per-key visit counts. A recording pass
// (fresh New, no arms) uses this to enumerate every reachable injection
// point for a given plan and worker count.
func (in *Injector) Visits() map[Key]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Key]int64, len(in.visits))
	for k, v := range in.visits {
		out[k] = v
	}
	return out
}

// Fired reports how many faults have fired since the last Reset.
func (in *Injector) Fired() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// mix collapses (seed, key, ordinal) into a 64-bit value with a
// splitmix64-style finalizer; quality only has to be good enough for
// an even spread of seeded faults.
func mix(seed uint64, key Key, n int64) uint64 {
	z := seed ^ uint64(key.Site)<<56 ^ uint64(uint32(key.Node))<<24 ^ uint64(n)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
