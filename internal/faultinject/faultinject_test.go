package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestRecordingModeNeverFires(t *testing.T) {
	in := New()
	for i := 0; i < 100; i++ {
		if err := in.Visit(SiteOp, 3); err != nil {
			t.Fatalf("recording injector fired: %v", err)
		}
	}
	if got := in.Visits()[Key{SiteOp, 3}]; got != 100 {
		t.Fatalf("visits = %d, want 100", got)
	}
	if in.Fired() != 0 {
		t.Fatalf("fired = %d, want 0", in.Fired())
	}
}

func TestArmedErrorFiresExactlyOnce(t *testing.T) {
	in := New()
	in.Arm(SiteMorsel, 7, 3, false)
	var errs int
	for i := 0; i < 10; i++ {
		if err := in.Visit(SiteMorsel, 7); err != nil {
			errs++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("err %v does not wrap ErrInjected", err)
			}
			if i != 2 {
				t.Fatalf("fired at visit %d, want visit 3", i+1)
			}
		}
	}
	if errs != 1 {
		t.Fatalf("fired %d times, want 1", errs)
	}
	// Other keys are unaffected.
	if err := in.Visit(SiteMorsel, 8); err != nil {
		t.Fatalf("unarmed key fired: %v", err)
	}
}

func TestArmedPanicWrapsErrInjected(t *testing.T) {
	in := New()
	in.Arm(SiteOp, 0, 1, true)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not wrap ErrInjected", r)
		}
	}()
	_ = in.Visit(SiteOp, 0)
}

func TestResetKeepsArms(t *testing.T) {
	in := New()
	in.Arm(SiteOp, 1, 1, false)
	if err := in.Visit(SiteOp, 1); err == nil {
		t.Fatal("armed visit 1 did not fire")
	}
	in.Reset()
	if err := in.Visit(SiteOp, 1); err == nil {
		t.Fatal("armed visit 1 did not fire after Reset")
	}
	in.Disarm(SiteOp, 1)
	in.Reset()
	if err := in.Visit(SiteOp, 1); err != nil {
		t.Fatalf("disarmed key fired: %v", err)
	}
}

func TestSeededDeterministic(t *testing.T) {
	run := func() []int {
		in := NewSeeded(42, 16)
		var fired []int
		for i := 0; i < 500; i++ {
			if err := in.Visit(SiteOp, i%5); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("err %v does not wrap ErrInjected", err)
				}
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("seeded injector with period 16 never fired in 500 visits")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: visit %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConcurrentVisits(t *testing.T) {
	in := New()
	in.Arm(SiteMorsel, 2, 500, false)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fires := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				if err := in.Visit(SiteMorsel, 2); err != nil {
					mu.Lock()
					fires++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fires != 1 {
		t.Fatalf("armed fault fired %d times across workers, want 1", fires)
	}
	if got := in.Visits()[Key{SiteMorsel, 2}]; got != 1000 {
		t.Fatalf("visits = %d, want 1000", got)
	}
}
