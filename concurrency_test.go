package disqo

// Concurrency suite for the snapshot-isolated engine: golden plan shapes
// re-executed by concurrent readers against live UPDATE/DELETE/DDL
// churn (every result must match SOME committed snapshot), a mixed
// stress workload (32 readers × 9 writers × 120 iterations) whose
// whole-table-UPDATE invariant catches torn writes, lost-update checks
// on concurrent inserts, the DB-wide shared tuple budget, and chaos
// isolation — an injected fault in one of five concurrent queries must
// never abort or corrupt its neighbors. Everything runs under
// internal/testutil.VerifyNoLeaks and is designed for `go test -race`.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"disqo/internal/faultinject"
	"disqo/internal/testutil"
	"disqo/internal/types"
)

// churnScript is the deterministic DML/DDL sequence the isolation tests
// apply: UPDATEs and DELETEs that change the golden queries' answers,
// plus DDL on a bystander table. Applying it sequentially to a mirror DB
// enumerates every legal committed state.
var churnScript = []string{
	`UPDATE r SET a4 = 100 WHERE a3 = 7`,
	`DELETE FROM r WHERE a3 = 5`,
	`INSERT INTO r VALUES (3, 1, 100, 1600)`,
	`CREATE TABLE aux (x INTEGER)`,
	`UPDATE s SET b4 = 0 WHERE b3 = 1`,
	`INSERT INTO s VALUES (1000, 3, 1, 2000)`,
	`DELETE FROM s WHERE b1 = 10`,
	`INSERT INTO aux VALUES (1)`,
	`UPDATE r SET a1 = 8 WHERE a2 = 2`,
	`DROP TABLE aux`,
	`DELETE FROM r WHERE a4 = 100`,
	`UPDATE s SET b2 = 2 WHERE b3 = 2`,
}

// TestSnapshotIsolationGoldenShapes runs each golden plan shape from N
// goroutines while a writer applies churnScript to the live DB. A mirror
// DB applies the same script sequentially first, collecting the
// fingerprint of the query's answer at every commit boundary — the set
// of legal snapshots. Every concurrent result must be byte-identical to
// one of them: a torn read (part old table version, part new) fails the
// membership check, and the final states of mirror and live DB must
// agree exactly.
func TestSnapshotIsolationGoldenShapes(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const readersPerShape = 4
	for _, plan := range chaosPlans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			fingerprint := func(db *DB) string {
				res, err := db.Query(plan.sql, WithStrategy(plan.strategy))
				if err != nil {
					t.Fatalf("fingerprint query: %v", err)
				}
				return rowsFingerprint(res)
			}

			mirror := chaosDB(t, 48, plan.highA4)
			legal := map[string]bool{fingerprint(mirror): true}
			for _, stmt := range churnScript {
				if _, err := mirror.Exec(stmt); err != nil {
					t.Fatalf("mirror %q: %v", stmt, err)
				}
				legal[fingerprint(mirror)] = true
			}

			db := chaosDB(t, 48, plan.highA4)
			stop := make(chan struct{})
			errCh := make(chan error, readersPerShape)
			var wg sync.WaitGroup
			for i := 0; i < readersPerShape; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, err := db.Query(plan.sql, WithStrategy(plan.strategy))
						if err != nil {
							errCh <- fmt.Errorf("concurrent reader: %w", err)
							return
						}
						if !legal[rowsFingerprint(res)] {
							errCh <- fmt.Errorf("reader observed a result matching no committed snapshot:\n%s",
								rowsFingerprint(res))
							return
						}
					}
				}()
			}
			for _, stmt := range churnScript {
				if _, err := db.Exec(stmt); err != nil {
					t.Errorf("live %q: %v", stmt, err)
					break
				}
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}
			if got, want := fingerprint(db), fingerprint(mirror); got != want {
				t.Fatalf("final states diverged:\n--- live ---\n%s--- mirror ---\n%s", got, want)
			}
		})
	}
}

// TestStressMixedWorkload is the acceptance stress test: 32 concurrent
// readers and 9 writers (8 whole-table updaters plus a DDL churner) for
// 120 iterations each. Each updater owns one table and commits
// whole-table UPDATEs, so any reader must see all eight rows carrying
// the same value — a torn write would mix two versions. Queries the
// admission gate sheds count as back-pressure, not failures, but must
// arrive as *QueryError wrapping ErrOverloaded.
func TestStressMixedWorkload(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const (
		readers    = 32
		updaters   = 8
		iterations = 120
		tableRows  = 8
	)
	db, _ := Open()
	for k := 0; k < updaters; k++ {
		name := fmt.Sprintf("w%d", k)
		if err := db.CreateTable(name, []Column{{Name: "v", Type: types.KindInt}}); err != nil {
			t.Fatal(err)
		}
		rows := make([][]Value, tableRows)
		for i := range rows {
			rows[i] = []Value{types.NewInt(0)}
		}
		if err := db.Insert(name, rows...); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		fails []error
		shed  int
	)
	fail := func(err error) {
		mu.Lock()
		if len(fails) < 8 {
			fails = append(fails, err)
		}
		mu.Unlock()
	}

	for k := 0; k < updaters; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= iterations; i++ {
				if _, err := db.Exec(fmt.Sprintf("UPDATE w%d SET v = %d", k, i)); err != nil {
					fail(fmt.Errorf("updater %d iter %d: %w", k, i, err))
					return
				}
			}
		}()
	}
	// The ninth writer churns DDL: repeated CREATE/DROP of a bystander
	// table interleaves catalog version bumps with the updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations/2; i++ {
			if _, err := db.Exec("CREATE TABLE churn (x INTEGER)"); err != nil {
				fail(fmt.Errorf("ddl churner create: %w", err))
				return
			}
			if _, err := db.Exec("DROP TABLE churn"); err != nil {
				fail(fmt.Errorf("ddl churner drop: %w", err))
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				table := (r + i) % updaters
				res, err := db.Query(fmt.Sprintf("SELECT * FROM w%d", table))
				if err != nil {
					if errors.Is(err, ErrOverloaded) {
						var qe *QueryError
						if !errors.As(err, &qe) {
							fail(fmt.Errorf("reader %d: shed error is not a *QueryError: %w", r, err))
							return
						}
						mu.Lock()
						shed++
						mu.Unlock()
						continue
					}
					fail(fmt.Errorf("reader %d iter %d: %w", r, i, err))
					return
				}
				if len(res.Rows) != tableRows {
					fail(fmt.Errorf("reader %d: w%d has %d rows, want %d (torn INSERT/DELETE?)",
						r, table, len(res.Rows), tableRows))
					return
				}
				first := res.Rows[0][0]
				for _, row := range res.Rows[1:] {
					if !types.Identical(first, row[0]) {
						fail(fmt.Errorf("reader %d: torn write in w%d: saw both %s and %s",
							r, table, first, row[0]))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range fails {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	// Every updater's final commit must be visible.
	for k := 0; k < updaters; k++ {
		res, err := db.Query(fmt.Sprintf("SELECT DISTINCT * FROM w%d", k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || !types.Identical(res.Rows[0][0], types.NewInt(iterations)) {
			t.Fatalf("w%d final state: %v, want all rows = %d", k, res.Rows, iterations)
		}
	}
	if shed > 0 {
		t.Logf("admission gate shed %d reads (classified, tolerated)", shed)
	}
}

// TestConcurrentInsertsNoLostUpdates drives the writer-serialization
// path: concurrent db.Insert calls and INSERT statements against one
// table must all commit — a lost copy-on-write update would drop rows.
func TestConcurrentInsertsNoLostUpdates(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 0)
	const (
		apiWriters = 8
		sqlWriters = 4
		perAPI     = 50
		perSQL     = 25
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fails []error
	for w := 0; w < apiWriters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perAPI; i++ {
				err := db.Insert("k", []Value{types.NewInt(int64(w)), types.NewInt(int64(i))})
				if err != nil {
					mu.Lock()
					fails = append(fails, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	for w := 0; w < sqlWriters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSQL; i++ {
				if _, err := db.Exec("INSERT INTO k VALUES (99, 99)"); err != nil {
					mu.Lock()
					fails = append(fails, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range fails {
		t.Fatal(err)
	}
	want := apiWriters*perAPI + sqlWriters*perSQL
	if n, err := db.RowCount("k"); err != nil || n != want {
		t.Fatalf("RowCount = %d, %v; want %d (lost updates)", n, err, want)
	}
}

// TestSharedTupleBudget covers the DB-wide resource governor end to end:
// sequential queries under a budget equal to one query's peak all
// succeed (proving the charge is released when each query closes), and a
// second query launched while the first is parked with its tuples
// resident deterministically aborts with ErrMemoryLimit — reachable as
// the documented ErrTupleLimit alias — then succeeds once the budget
// frees up.
func TestSharedTupleBudget(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const rows = 200
	base := gateDB(t, rows)
	res, err := base.Query(gateQuery, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	peak := res.Stats.PeakTuples
	if peak < int64(rows) {
		t.Fatalf("peak resident %d below table size %d; budget test assumptions broken", peak, rows)
	}

	db := gateDB(t, rows, WithSharedTupleLimit(peak))
	for i := 0; i < 3; i++ {
		if _, err := db.Query(gateQuery, WithWorkers(1)); err != nil {
			t.Fatalf("sequential run %d under exact budget failed: %v (budget leak?)", i, err)
		}
	}

	// Park query 1 after its first operator pinned output tuples.
	tr := newBlockTracer(true)
	first := make(chan error, 1)
	go func() {
		_, err := db.Query(gateQuery, WithWorkers(1), WithTracer(tr))
		first <- err
	}()
	<-tr.started
	if db.budget.Resident() == 0 {
		t.Fatal("parked query holds no resident tuples; blocking site moved")
	}

	_, err = db.Query(gateQuery, WithWorkers(1))
	if !errors.Is(err, ErrTupleLimit) || !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("over-budget query returned %v, want ErrTupleLimit (= ErrMemoryLimit)", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("budget error %T is not a *QueryError", err)
	}

	close(tr.release)
	if err := <-first; err != nil {
		t.Fatalf("parked query failed after release: %v", err)
	}
	if got := db.budget.Resident(); got != 0 {
		t.Fatalf("budget still holds %d tuples after all queries closed", got)
	}
	if _, err := db.Query(gateQuery, WithWorkers(1)); err != nil {
		t.Fatalf("query after budget freed failed: %v", err)
	}
}

// TestCachedReadersUnderChurn is the invalidation-race test: readers
// hammer ONE golden shape — so warm result-cache hits happen constantly
// — while a writer applies churnScript to the live DB. A stale hit
// would serve rows matching no committed snapshot; the legal-set
// membership check catches it. Afterwards the cache must converge: a
// refill query followed by a deterministic hit, both matching the
// mirror's final state.
func TestCachedReadersUnderChurn(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const readers = 6
	for _, plan := range []struct{ idx int }{{2}, {0}} { // fig2c unnested, fig2a canonical
		plan := chaosPlans[plan.idx]
		t.Run(plan.name, func(t *testing.T) {
			fingerprint := func(db *DB) string {
				res, err := db.Query(plan.sql, WithStrategy(plan.strategy))
				if err != nil {
					t.Fatalf("fingerprint query: %v", err)
				}
				return rowsFingerprint(res)
			}

			mirror := chaosDBWith(t, 48, plan.highA4, WithoutCache())
			legal := map[string]bool{fingerprint(mirror): true}
			for _, stmt := range churnScript {
				if _, err := mirror.Exec(stmt); err != nil {
					t.Fatalf("mirror %q: %v", stmt, err)
				}
				legal[fingerprint(mirror)] = true
			}

			db := chaosDB(t, 48, plan.highA4)
			stop := make(chan struct{})
			errCh := make(chan error, readers)
			var wg sync.WaitGroup
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, err := db.Query(plan.sql, WithStrategy(plan.strategy))
						if err != nil {
							errCh <- fmt.Errorf("cached reader: %w", err)
							return
						}
						if !legal[rowsFingerprint(res)] {
							errCh <- fmt.Errorf("cached reader observed a result matching no committed snapshot:\n%s",
								rowsFingerprint(res))
							return
						}
					}
				}()
			}
			for _, stmt := range churnScript {
				if _, err := db.Exec(stmt); err != nil {
					t.Errorf("live %q: %v", stmt, err)
					break
				}
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			// Churn is over: one refill, then a guaranteed warm hit, both
			// equal to the mirror's final committed state.
			final := fingerprint(mirror)
			if got := fingerprint(db); got != final {
				t.Fatalf("post-churn refill diverged from mirror:\n--- live ---\n%s--- mirror ---\n%s", got, final)
			}
			before := db.CacheStats()
			if got := fingerprint(db); got != final {
				t.Fatal("post-churn warm read diverged from mirror")
			}
			if after := db.CacheStats(); after.Result.Hits != before.Result.Hits+1 {
				t.Fatal("post-churn second read was not a result-cache hit")
			}
			if cs := db.CacheStats(); cs.Result.Invalidations == 0 {
				t.Fatal("churn produced no cache invalidations; the race was never exercised")
			}
		})
	}
}

// TestSingleFlightOwnerFault runs a fault-armed query concurrently with
// clean twins asking the exact same question. Fault-injected queries
// never read or join cleanly — but clean arrivals may coalesce behind
// the faulted owner's flight. Every legal outcome for a twin is either
// the baseline rows (it executed, hit, or waited on a clean owner) or a
// classified *QueryError resolving faultinject.ErrInjected (it waited
// on the faulted owner); the error must never be cached, so a fresh
// query afterwards always returns the baseline.
func TestSingleFlightOwnerFault(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	target := chaosPlans[2] // fig2c-q1-unnested
	const twins = 4

	// Discover injection sites on a throwaway DB.
	probe := chaosDB(t, 64, target.highA4)
	baselineRes, err := probe.Query(target.sql, WithStrategy(target.strategy))
	if err != nil {
		t.Fatal(err)
	}
	baseline := rowsFingerprint(baselineRes)
	rec := faultinject.New()
	if _, err := probe.Query(target.sql, WithStrategy(target.strategy), withFaultInjector(rec)); err != nil {
		t.Fatal(err)
	}
	keys := sortedKeys(rec.Visits())
	if len(keys) == 0 {
		t.Fatal("no injection points recorded")
	}
	picks := []faultinject.Key{keys[0], keys[len(keys)-1]}

	for _, key := range picks {
		for _, panics := range []bool{false, true} {
			key, panics := key, panics
			t.Run(fmt.Sprintf("%s@%d panic=%v", key.Site, key.Node, panics), func(t *testing.T) {
				// Fresh DB per trial: an empty cache makes the faulted
				// query the flight owner whenever it registers first.
				db := chaosDB(t, 64, target.highA4)
				var wg sync.WaitGroup
				faultErr := make(chan error, 1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					fi := faultinject.New()
					fi.Arm(key.Site, key.Node, 1, panics)
					_, err := db.Query(target.sql, WithStrategy(target.strategy), withFaultInjector(fi))
					faultErr <- err
				}()
				time.Sleep(100 * time.Microsecond) // bias the race toward a faulted owner
				twinErrs := make(chan error, twins)
				for i := 0; i < twins; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						res, err := db.Query(target.sql, WithStrategy(target.strategy))
						if err != nil {
							var qe *QueryError
							if !errors.As(err, &qe) {
								twinErrs <- fmt.Errorf("twin error %T is not a *QueryError: %w", err, err)
								return
							}
							if !errors.Is(err, faultinject.ErrInjected) {
								twinErrs <- fmt.Errorf("twin failed with a non-injected cause: %w", err)
							}
							return
						}
						if rowsFingerprint(res) != baseline {
							twinErrs <- errors.New("clean twin served rows differing from the baseline")
						}
					}()
				}
				wg.Wait()
				if err := <-faultErr; err == nil {
					t.Fatal("armed fault did not surface in the target query")
				} else if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("target error does not resolve the injected cause: %v", err)
				}
				close(twinErrs)
				for err := range twinErrs {
					t.Error(err)
				}
				// No poisoned entry: the next clean query re-executes (or
				// hits a clean twin's fill) and matches the baseline.
				res, err := db.Query(target.sql, WithStrategy(target.strategy))
				if err != nil {
					t.Fatalf("query after faulted flight: %v", err)
				}
				if rowsFingerprint(res) != baseline {
					t.Fatal("faulted flight poisoned the cache")
				}
			})
		}
	}
}

// TestChaosConcurrentIsolation arms a deterministic fault in one query
// while four clean queries (the other golden shapes) run concurrently
// against the same DB, repeatedly: the injected error or panic must
// surface only in the faulted query, every neighbor must return its
// exact baseline rows, and the DB must stay fully usable afterwards.
func TestChaosConcurrentIsolation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := chaosDB(t, 64, false)

	// The five shapes that share the low-a4 dataset; the first is the
	// fault target, the rest run clean alongside it.
	var plans []struct {
		name     string
		sql      string
		strategy Strategy
		highA4   bool
	}
	for _, p := range chaosPlans {
		if !p.highA4 {
			plans = append(plans, p)
		}
	}
	target := plans[0]
	neighbors := plans[1:]
	if len(neighbors)+1 < 5 {
		t.Fatalf("need at least 5 concurrent queries, have %d", len(neighbors)+1)
	}

	baselines := make(map[string]string, len(plans))
	for _, p := range plans {
		res, err := db.Query(p.sql, WithStrategy(p.strategy), WithWorkers(2))
		if err != nil {
			t.Fatalf("%s baseline: %v", p.name, err)
		}
		baselines[p.name] = rowsFingerprint(res)
	}

	rec := faultinject.New()
	if _, err := db.Query(target.sql, WithStrategy(target.strategy), WithWorkers(2),
		withFaultInjector(rec)); err != nil {
		t.Fatal(err)
	}
	keys := sortedKeys(rec.Visits())
	if len(keys) == 0 {
		t.Fatal("no injection points recorded")
	}
	picks := []faultinject.Key{keys[0], keys[len(keys)/2], keys[len(keys)-1]}

	for _, key := range picks {
		for _, panics := range []bool{false, true} {
			key, panics := key, panics
			t.Run(fmt.Sprintf("%s@%d panic=%v", key.Site, key.Node, panics), func(t *testing.T) {
				var wg sync.WaitGroup
				wg.Add(1)
				faultErr := make(chan error, 1)
				go func() {
					defer wg.Done()
					fi := faultinject.New()
					fi.Arm(key.Site, key.Node, 1, panics)
					_, err := db.Query(target.sql, WithStrategy(target.strategy),
						WithWorkers(2), withFaultInjector(fi))
					faultErr <- err
				}()
				for _, p := range neighbors {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						res, err := db.Query(p.sql, WithStrategy(p.strategy), WithWorkers(2))
						if err != nil {
							t.Errorf("neighbor %s aborted by a fault in another query: %v", p.name, err)
							return
						}
						if got := rowsFingerprint(res); got != baselines[p.name] {
							t.Errorf("neighbor %s corrupted by a fault in another query", p.name)
						}
					}()
				}
				wg.Wait()
				err := <-faultErr
				if err == nil {
					t.Fatal("armed fault did not surface in the target query")
				}
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("target error does not resolve the injected cause: %v", err)
				}
			})
		}
	}

	// After every trial the DB answers all shapes correctly.
	for _, p := range plans {
		res, err := db.Query(p.sql, WithStrategy(p.strategy), WithWorkers(2))
		if err != nil {
			t.Fatalf("%s after chaos: %v", p.name, err)
		}
		if rowsFingerprint(res) != baselines[p.name] {
			t.Fatalf("%s drifted after chaos", p.name)
		}
	}
}
