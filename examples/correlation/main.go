// correlation demonstrates disjunctive *correlation* — the case where
// the correlation predicate sits inside the nested block's own
// disjunction (paper §3.2) — and the paper's two answers to it:
// Equivalence 4 for decomposable aggregates (COUNT/SUM/AVG/MIN/MAX) and
// Equivalence 5 for the rest (e.g. COUNT(DISTINCT …)). It also runs the
// linear query Q4, where the second disjunct is itself another nested
// block.
//
// Run with: go run ./examples/correlation [-sf 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"disqo"
)

func main() {
	sf := flag.Float64("sf", 0.05, "RST scale multiplier (paper SF1 = 10,000 rows)")
	flag.Parse()

	db, err := disqo.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadRST(*sf, *sf, *sf); err != nil {
		log.Fatal(err)
	}
	rows, _ := db.RowCount("r")
	fmt.Printf("RST loaded: %d rows per table\n\n", rows)

	cases := []struct {
		title string
		sql   string
	}{
		{
			"Q2 — disjunctive correlation, COUNT(*) (decomposable → Eqv. 4)",
			`SELECT DISTINCT * FROM r
			 WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`,
		},
		{
			"Q2' — COUNT(DISTINCT b1) is not decomposable → Eqv. 5",
			`SELECT DISTINCT * FROM r
			 WHERE a1 = (SELECT COUNT(DISTINCT b1) FROM s WHERE a2 = b2 OR b4 > 1500)`,
		},
		{
			"Q4 — linear query: the second disjunct is another nested block (Eqv. 5 then Eqv. 1)",
			`SELECT DISTINCT * FROM r
			 WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2
			              OR b3 = (SELECT COUNT(DISTINCT *) FROM t WHERE b4 = c2))`,
		},
	}

	for _, c := range cases {
		fmt.Println("==", c.title)
		canonical, err := db.Query(c.sql, disqo.WithStrategy(disqo.Canonical))
		if err != nil {
			log.Fatal(err)
		}
		unnested, err := db.Query(c.sql, disqo.WithStrategy(disqo.Unnested))
		if err != nil {
			log.Fatal(err)
		}
		if len(canonical.Rows) != len(unnested.Rows) {
			log.Fatalf("strategies disagree: %d vs %d rows", len(canonical.Rows), len(unnested.Rows))
		}
		speedup := float64(canonical.Elapsed) / float64(unnested.Elapsed)
		fmt.Printf("   canonical: %10s (%d subquery evaluations)\n",
			canonical.Elapsed.Round(time.Microsecond), canonical.Stats.SubqueryEvals)
		fmt.Printf("   unnested:  %10s (%.0fx faster)\n",
			unnested.Elapsed.Round(time.Microsecond), speedup)
		fmt.Printf("   rewrites:  %v\n\n", unnested.Rewrites)
	}
}
