// explain prints the plan sketches of the paper's Figures 2, 3, 5 and 6:
// for each of Q1–Q4 it shows the canonical translation next to the
// unnested bypass plan, with the DAG sharing introduced by bypass
// operators made explicit (#n / ↑ see #n markers).
//
// Run with: go run ./examples/explain
package main

import (
	"fmt"
	"log"

	"disqo"
)

func main() {
	db, err := disqo.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadRST(0.01, 0.01, 0.01); err != nil {
		log.Fatal(err)
	}

	figures := []struct {
		figure string
		sql    string
	}{
		{"Fig. 2 — Q1, disjunctive linking",
			`SELECT DISTINCT * FROM r
			 WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
			    OR a4 > 1500`},
		{"Fig. 3 — Q2, disjunctive correlation",
			`SELECT DISTINCT * FROM r
			 WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`},
		{"Fig. 5 — Q3, tree query",
			`SELECT DISTINCT * FROM r
			 WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
			    OR a3 = (SELECT COUNT(DISTINCT *) FROM t WHERE a4 = c2)`},
		{"Fig. 6 — Q4, linear query",
			`SELECT DISTINCT * FROM r
			 WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2
			              OR b3 = (SELECT COUNT(DISTINCT *) FROM t WHERE b4 = c2))`},
	}

	for _, f := range figures {
		fmt.Println("#", f.figure)
		out, err := db.Explain(f.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
