// analytics exercises the engine features beyond the paper's core
// experiments on a generated TPC-H database: GROUP BY / HAVING, derived
// tables in FROM (with a disjunctive nested query inside — the paper's
// future-work item (2)), quantified comparisons (θ ALL / θ ANY, item
// (3)), and the cost-based strategy that declines unprofitable rewrites.
//
// Run with: go run ./examples/analytics [-sf 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"disqo"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	flag.Parse()

	db, err := disqo.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadTPCH(*sf); err != nil {
		log.Fatal(err)
	}

	run := func(title, sql string, opts ...disqo.Option) {
		fmt.Println("==", title)
		res, err := db.Query(sql, opts...)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		out := res.String()
		lines := strings.SplitN(out, "\n", 7)
		if len(lines) > 6 {
			out = strings.Join(lines[:6], "\n") + "\n...\n"
		}
		fmt.Print(out)
		fmt.Printf("   elapsed %s", res.Elapsed.Round(time.Microsecond))
		if len(res.Rewrites) > 0 {
			fmt.Printf("   rewrites: %s", strings.Join(res.Rewrites, "; "))
		}
		fmt.Print("\n\n")
	}

	run("suppliers per nation (GROUP BY + HAVING + ORDER BY)",
		`SELECT n_name, COUNT(*) AS suppliers, AVG(s_acctbal) AS avg_bal
		 FROM supplier, nation
		 WHERE s_nationkey = n_nationkey
		 GROUP BY n_name
		 HAVING COUNT(*) >= 3
		 ORDER BY suppliers DESC, n_name`)

	run("derived table with a disjunctive nested query inside (future-work item 2)",
		`SELECT x.p_partkey, x.ps_supplycost
		 FROM (SELECT p_partkey, ps_supplycost, ps_availqty
		       FROM part, partsupp
		       WHERE p_partkey = ps_partkey
		         AND (ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp
		                               WHERE p_partkey = ps_partkey)
		              OR ps_availqty > 9000)) x
		 WHERE x.ps_availqty > 4000
		 ORDER BY x.p_partkey`)

	run("parts cheaper than every supply of part 1 (θ ALL, future-work item 3)",
		`SELECT DISTINCT ps_partkey FROM partsupp
		 WHERE ps_supplycost < ALL (SELECT ps_supplycost FROM partsupp WHERE ps_partkey = 1)
		 ORDER BY ps_partkey`)

	run("cost-based strategy picks the cheaper plan automatically",
		`SELECT DISTINCT p_partkey FROM part, partsupp
		 WHERE p_partkey = ps_partkey
		   AND (ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp
		                         WHERE p_partkey = ps_partkey)
		        OR ps_availqty > 2000)`,
		disqo.WithStrategy(disqo.CostBased))
}
