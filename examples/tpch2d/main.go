// tpch2d runs the paper's introductory analytical query — "Query 2d", a
// disjunctive variant of TPC-H Q2: European suppliers that either supply
// a part at the minimum cost or have plenty of it on stock — over a
// generated TPC-H database, comparing every strategy's wall clock.
//
// Run with: go run ./examples/tpch2d [-sf 0.02]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"disqo"
)

const query2d = `SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND p_size = 15 AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND (ps_supplycost = (SELECT MIN(ps_supplycost)
                        FROM partsupp, supplier, nation, region
                        WHERE s_suppkey = ps_suppkey
                          AND p_partkey = ps_partkey
                          AND s_nationkey = n_nationkey
                          AND n_regionkey = r_regionkey
                          AND r_name = 'EUROPE')
       OR ps_availqty > 2000)
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-strategy timeout")
	flag.Parse()

	db, err := disqo.Open()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := db.LoadTPCH(*sf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated TPC-H SF %g in %s\n", *sf, time.Since(start).Round(time.Millisecond))
	for _, t := range db.Tables() {
		n, _ := db.RowCount(t)
		fmt.Printf("  %-10s %8d rows\n", t, n)
	}
	fmt.Println()

	var sample *disqo.Result
	for _, strategy := range disqo.Strategies() {
		res, err := db.Query(query2d,
			disqo.WithStrategy(strategy), disqo.WithTimeout(*timeout))
		switch {
		case errors.Is(err, disqo.ErrTimeout):
			fmt.Printf("%-10s n/a (exceeded %s — the paper's six-hour cutoff in miniature)\n", strategy, timeout)
			continue
		case errors.Is(err, disqo.ErrOverloaded):
			fmt.Printf("%-10s shed (admission gate: transient overload, retry)\n", strategy)
			continue
		case errors.Is(err, disqo.ErrTupleLimit):
			fmt.Printf("%-10s mem (tuple budget exhausted)\n", strategy)
			continue
		case err != nil:
			log.Fatalf("%s: %v", strategy, err)
		}
		fmt.Printf("%-10s %10s   rows=%d  comparisons=%d  subquery-evals=%d\n",
			strategy, res.Elapsed.Round(time.Microsecond), len(res.Rows),
			res.Stats.Comparisons, res.Stats.SubqueryEvals)
		sample = res
	}

	if sample != nil && len(sample.Rows) > 0 {
		fmt.Println("\ntop qualifying suppliers (best account balance first):")
		limit := len(sample.Rows)
		if limit > 5 {
			limit = 5
		}
		for _, row := range sample.Rows[:limit] {
			fmt.Printf("  %-22s %-14s part %-6v acctbal %v\n",
				row[1], row[2], row[3], row[0])
		}
	}
}
