// Quickstart: create a small database by hand, run the paper's Q1 — a
// query whose linking predicate occurs in a disjunction — under both the
// canonical (nested-loop) and the unnested (bypass) strategy, and show
// that the results agree while the unnested plan does far less work.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"disqo"
)

func main() {
	db, err := disqo.Open()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's R and S relations (schema §4.1), tiny and hand-filled.
	for _, t := range []struct {
		name   string
		prefix string
	}{{"r", "a"}, {"s", "b"}} {
		cols := make([]disqo.Column, 4)
		for i := range cols {
			cols[i] = disqo.Column{Name: fmt.Sprintf("%s%d", t.prefix, i+1), Type: disqo.TypeInt}
		}
		if err := db.CreateTable(t.name, cols); err != nil {
			log.Fatal(err)
		}
	}
	insert := func(table string, rows ...[4]int64) {
		for _, r := range rows {
			err := db.Insert(table, []disqo.Value{
				disqo.Int(r[0]), disqo.Int(r[1]), disqo.Int(r[2]), disqo.Int(r[3])})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	insert("r",
		[4]int64{1, 10, 5, 1000},
		[4]int64{2, 20, 6, 2000},
		[4]int64{2, 10, 7, 1200},
		[4]int64{0, 30, 8, 1501})
	insert("s",
		[4]int64{1, 10, 5, 1400},
		[4]int64{2, 10, 6, 1600},
		[4]int64{3, 20, 7, 1700},
		[4]int64{4, 40, 8, 100})

	// Q1 (paper §3.1): the linking predicate A1 = (…) occurs in a
	// disjunction with the cheap predicate A4 > 1500. Classical unnesting
	// cannot touch it; the bypass rewrite can.
	const q1 = `SELECT DISTINCT * FROM r
	            WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	               OR a4 > 1500`

	for _, strategy := range []disqo.Strategy{disqo.Canonical, disqo.Unnested} {
		res, err := db.Query(q1, disqo.WithStrategy(strategy))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== strategy %s ==\n%s", strategy, res.String())
		fmt.Printf("comparisons: %d, nested subquery evaluations: %d\n",
			res.Stats.Comparisons, res.Stats.SubqueryEvals)
		if len(res.Rewrites) > 0 {
			fmt.Printf("rewrites applied: %v\n", res.Rewrites)
		}
		fmt.Println()
	}

	// The optimized plan is a DAG with a bypass selection — compare it
	// with Fig. 2(c) in the paper.
	plan, err := db.Explain(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
}
