package disqo

import (
	"errors"
	"strings"
	"time"

	"disqo/internal/telemetry"
)

// strategyOf resolves a query config's effective strategy (an empty
// strategy means Unnested everywhere in the engine).
func strategyOf(cfg queryConfig) Strategy {
	if cfg.strategy == "" {
		return Unnested
	}
	return cfg.strategy
}

// observe records one finished query in the workload collector: the
// outcome classification (OK / error / shed on ErrOverloaded), the
// strategy/path split, and — for successes — rows and the wall time
// since API entry. Statements that fail before planning are not
// observed; the registry tracks planned statements. No-op when
// telemetry is disabled.
func (db *DB) observe(norm string, cfg queryConfig, planHit bool, rows int64, err error, src telemetry.Source) {
	if db.tele == nil {
		return
	}
	obs := telemetry.Obs{
		Strategy: string(strategyOf(cfg)),
		Path:     cfg.path.String(),
		Rows:     rows,
		PlanHit:  planHit,
		Source:   src,
	}
	switch {
	case err == nil:
		obs.Outcome = telemetry.OutcomeOK
		obs.Elapsed = time.Since(cfg.began)
	case errors.Is(err, ErrOverloaded):
		obs.Outcome = telemetry.OutcomeShed
	default:
		obs.Outcome = telemetry.OutcomeError
	}
	db.tele.Observe(norm, obs)
}

// captureSlow appends the query to the slow-query ring when a threshold
// is armed and the wall time since API entry is at or over it. plan is
// the ANALYZE-annotated physical plan when the caller had one (slow
// failures carry none — their metrics are partial).
func (db *DB) captureSlow(norm string, cfg queryConfig, rows int64, err error, plan string) {
	th := db.tele.SlowThreshold()
	if th <= 0 {
		return
	}
	elapsed := time.Since(cfg.began)
	if elapsed < th {
		return
	}
	q := telemetry.SlowQuery{
		Time:     time.Now(),
		SQL:      norm,
		Strategy: string(strategyOf(cfg)),
		Path:     cfg.path.String(),
		Elapsed:  elapsed,
		Rows:     rows,
		Plan:     plan,
	}
	if err != nil {
		q.Err = err.Error()
	}
	db.tele.RecordSlow(q)
}

// opObs flattens a per-operator metrics report into the telemetry
// layer's est-vs-actual observations, one per executed operator. The
// operator class is the physical label cut at its first argument —
// "Filter[a1 = 1 (compiled)]" and "Filter[a4 > 1500]" both aggregate
// under "Filter" — which is the granularity the feedback-driven
// re-optimization loop consumes.
func opObs(pm *PlanMetrics) []telemetry.OpObs {
	if pm == nil {
		return nil
	}
	out := make([]telemetry.OpObs, 0, len(pm.Ops))
	for _, op := range pm.Ops {
		if op.Calls == 0 {
			continue
		}
		out = append(out, telemetry.OpObs{
			Class:      opClass(op.Op),
			EstRows:    op.EstRows,
			ActualRows: op.RowsOut,
		})
	}
	return out
}

// opClass cuts a physical label at its first argument delimiter:
// "Scan(r)" → "Scan", "Filter±[...]" → "Filter±".
func opClass(label string) string {
	if i := strings.IndexAny(label, "(["); i > 0 {
		return label[:i]
	}
	return label
}

// AdmissionStats is the admission gate's telemetry: the configured
// bounds, the instantaneous load, and the cumulative admission
// counters. A DB without admission control reports zeros.
type AdmissionStats struct {
	// MaxConcurrent / MaxQueued are the configured bounds.
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueued     int `json:"max_queued"`
	// Active / Queued are the instantaneous gauges.
	Active int `json:"active"`
	Queued int `json:"queued"`
	// Admitted counts granted slots; Shed counts ErrOverloaded
	// rejections; QueueWait sums every waiter's time in the queue.
	Admitted  int64         `json:"admitted"`
	Shed      int64         `json:"shed"`
	QueueWait time.Duration `json:"queue_wait_ns"`
}

// BudgetStats is the shared tuple budget's telemetry. A DB without a
// shared budget (WithSharedTupleLimit unset) reports zeros.
type BudgetStats struct {
	// Limit is the configured bound; Resident the tuples currently
	// charged; Peak the high-water mark since Open or the last
	// ResetStats.
	Limit    int64 `json:"limit"`
	Resident int64 `json:"resident"`
	Peak     int64 `json:"peak"`
}

// WorkloadStats is the DB's full observability snapshot: the workload
// the telemetry layer aggregated (per-statement registry, latency
// distribution, slow-query ring) folded together with the cache tiers,
// the admission gate, and the shared tuple budget. The same numbers
// back the Prometheus /metrics endpoint.
type WorkloadStats struct {
	// Enabled reports whether the telemetry layer is collecting; with
	// WithoutTelemetry the workload sections are zero but Cache,
	// Admission, and Budget still carry live values.
	Enabled bool `json:"enabled"`
	// Uptime is the time since Open.
	Uptime time.Duration `json:"uptime_ns"`
	// Inflight is the number of public API calls currently inside the
	// engine (queries, writes, checkpoints) — the drain counter Close
	// waits on, wider than Admission.Active which counts only queries
	// holding execution slots.
	Inflight int `json:"inflight"`

	// Queries counts every observed query; Errors and Sheds classify the
	// failures (Sheds are ErrOverloaded rejections — back-pressure, not
	// bugs); RowsReturned sums successful queries' result sizes.
	Queries      int64 `json:"queries"`
	Errors       int64 `json:"errors"`
	Sheds        int64 `json:"sheds"`
	RowsReturned int64 `json:"rows_returned"`

	// Latency is the global successful-query latency distribution.
	Latency telemetry.LatencySnapshot `json:"latency"`

	// Statements is the per-fingerprint registry, sorted by total wall
	// time descending; DroppedStatements counts observations that found
	// the registry at capacity.
	Statements        []telemetry.StatementStats `json:"statements"`
	DroppedStatements int64                      `json:"dropped_statements,omitempty"`

	// SlowQueries is the slow-query ring, newest first; SlowTotal counts
	// every capture ever made (the ring overwrites).
	SlowQueries []telemetry.SlowQuery `json:"slow_queries,omitempty"`
	SlowTotal   int64                 `json:"slow_total"`

	Cache     CacheStats     `json:"cache"`
	Admission AdmissionStats `json:"admission"`
	Budget    BudgetStats    `json:"budget"`

	// WAL is the write-ahead log's counter snapshot; nil for a volatile
	// DB (WithDataDir unset). RecoveryReplayedRecords counts the log
	// records crash recovery replayed when this process opened the
	// directory (0 after a clean shutdown at a checkpoint).
	WAL                     *WALStats `json:"wal,omitempty"`
	RecoveryReplayedRecords uint64    `json:"recovery_replayed_records,omitempty"`
}

// WorkloadStats assembles the DB's observability snapshot. Safe to call
// from a monitoring goroutine at any frequency; the snapshot is
// consistent per counter, not across counters (queries keep finishing
// while it is taken).
func (db *DB) WorkloadStats() WorkloadStats {
	ws := WorkloadStats{
		Enabled:  db.tele != nil,
		Uptime:   time.Since(db.start),
		Inflight: db.InflightQueries(),
		Cache:    db.CacheStats(),
	}
	if db.tele != nil {
		snap := db.tele.Snapshot()
		ws.Queries = snap.Queries
		ws.Errors = snap.Errors
		ws.Sheds = snap.Sheds
		ws.RowsReturned = snap.Rows
		ws.Latency = snap.Latency
		ws.Statements = snap.Statements
		ws.DroppedStatements = snap.DroppedStatements
		ws.SlowQueries = snap.Slow
		ws.SlowTotal = snap.SlowTotal
	}
	gs := db.gate.stats()
	ws.Admission = AdmissionStats{
		MaxConcurrent: gs.max,
		MaxQueued:     gs.maxQueued,
		Active:        gs.active,
		Queued:        gs.queued,
		Admitted:      gs.admitted,
		Shed:          gs.shed,
		QueueWait:     time.Duration(gs.waitNanos),
	}
	if db.budget != nil {
		ws.Budget = BudgetStats{
			Limit:    db.budget.Limit(),
			Resident: db.budget.Resident(),
			Peak:     db.budget.Peak(),
		}
	}
	if db.wal != nil {
		st := db.wal.Stats()
		ws.WAL = &st
		ws.RecoveryReplayedRecords = db.replayed.Load()
	}
	return ws
}

// InflightQueries reports how many public API calls are currently
// inside the engine — the same counter Close's drain waits on. Servers
// export it as a gauge to watch a drain progress.
func (db *DB) InflightQueries() int {
	db.lifeMu.Lock()
	defer db.lifeMu.Unlock()
	return db.inflight
}

// ResetStats zeroes every cumulative workload counter — the statement
// registry, latency histograms, slow-query ring, cache tier counters,
// admission counters, and the budget peak watermark — without touching
// cached entries, in-flight queries, or instantaneous gauges. Long-
// lived benches and the REPL use it to measure deltas over a warm
// engine.
func (db *DB) ResetStats() {
	db.tele.Reset()
	if db.pcache != nil {
		db.pcache.ResetStats()
	}
	if db.rcache != nil {
		db.rcache.ResetStats()
	}
	db.gate.resetStats()
	db.budget.ResetPeak()
}
