package disqo

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"disqo/internal/telemetry"
)

// debugServer is the opt-in observability listener (WithDebugAddr): a
// plain net/http server on its own mux serving
//
//	/metrics      Prometheus text-format exposition of WorkloadStats
//	/statz        the WorkloadStats snapshot as JSON
//	/debug/pprof  the standard runtime profiles
//
// The server lives until DB.Close, which shuts it down gracefully.
type debugServer struct {
	ln       net.Listener
	srv      *http.Server
	shutOnce sync.Once
	shutErr  error
}

// startDebugServer binds addr and begins serving. A failed bind is
// returned as an error (Open cannot fail, so the DB records it for
// DebugAddr to report).
func startDebugServer(db *DB, addr string) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(prometheusText(db.WorkloadStats()))
		if db.debugExtra != nil {
			w.Write(db.debugExtra())
		}
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(db.WorkloadStats())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds := &debugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ds.srv.Serve(ln)
	return ds, nil
}

// addr returns the listener's bound address (resolving ":0").
func (ds *debugServer) addr() string {
	return ds.ln.Addr().String()
}

// shutdown stops the server gracefully, bounded so Close never hangs on
// a wedged scraper. Idempotent.
func (ds *debugServer) shutdown() error {
	ds.shutOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		ds.shutErr = ds.srv.Shutdown(ctx)
	})
	return ds.shutErr
}

// prometheusText renders a WorkloadStats snapshot in Prometheus text
// exposition format. Per-statement series are labeled by fingerprint
// and emitted in fingerprint order, so successive scrapes list series
// stably.
func prometheusText(ws WorkloadStats) []byte {
	var e telemetry.Exposition

	e.Family("disqo_uptime_seconds", "gauge", "Seconds since the database was opened.")
	e.Value("", ws.Uptime.Seconds())

	e.Family("disqo_queries_total", "counter", "Queries observed, any outcome.")
	e.Value("", float64(ws.Queries))
	e.Family("disqo_query_errors_total", "counter", "Queries that failed (excluding admission sheds).")
	e.Value("", float64(ws.Errors))
	e.Family("disqo_queries_shed_total", "counter", "Queries shed by admission control (ErrOverloaded).")
	e.Value("", float64(ws.Sheds))
	e.Family("disqo_rows_returned_total", "counter", "Rows returned by successful queries.")
	e.Value("", float64(ws.RowsReturned))

	e.Family("disqo_query_duration_seconds", "histogram", "Successful query latency (log2 buckets).")
	e.Histogram(ws.Latency)

	e.Family("disqo_statement_calls_total", "counter", "Calls per registered statement.")
	stmts := telemetry.Snapshot{Statements: ws.Statements}.SortedStatements()
	for _, st := range stmts {
		e.Value("", float64(st.Calls), "fingerprint", st.Fingerprint)
	}
	e.Family("disqo_statement_seconds_total", "counter", "Total successful wall time per registered statement.")
	for _, st := range stmts {
		e.Value("", st.TotalWall.Seconds(), "fingerprint", st.Fingerprint)
	}
	e.Family("disqo_statements_dropped_total", "counter", "Observations dropped because the statement registry was full.")
	e.Value("", float64(ws.DroppedStatements))

	e.Family("disqo_slow_queries_total", "counter", "Queries captured by the slow-query log.")
	e.Value("", float64(ws.SlowTotal))

	e.Family("disqo_cache_hits_total", "counter", "Cache hits per tier.")
	e.Value("", float64(ws.Cache.Plan.Hits), "tier", "plan")
	e.Value("", float64(ws.Cache.Result.Hits), "tier", "result")
	e.Family("disqo_cache_misses_total", "counter", "Cache misses per tier.")
	e.Value("", float64(ws.Cache.Plan.Misses), "tier", "plan")
	e.Value("", float64(ws.Cache.Result.Misses), "tier", "result")
	e.Family("disqo_cache_evictions_total", "counter", "Cache evictions per tier.")
	e.Value("", float64(ws.Cache.Plan.Evictions), "tier", "plan")
	e.Value("", float64(ws.Cache.Result.Evictions), "tier", "result")
	e.Family("disqo_cache_waits_total", "counter", "Single-flight waits on the result tier.")
	e.Value("", float64(ws.Cache.Result.Waits))
	e.Family("disqo_cache_invalidations_total", "counter", "Result-cache entries dropped by write invalidation.")
	e.Value("", float64(ws.Cache.Result.Invalidations))
	e.Family("disqo_cache_entries", "gauge", "Resident cache entries per tier.")
	e.Value("", float64(ws.Cache.Plan.Entries), "tier", "plan")
	e.Value("", float64(ws.Cache.Result.Entries), "tier", "result")
	e.Family("disqo_cache_bytes", "gauge", "Resident cache bytes per tier.")
	e.Value("", float64(ws.Cache.Plan.Bytes), "tier", "plan")
	e.Value("", float64(ws.Cache.Result.Bytes), "tier", "result")

	e.Family("disqo_admission_active", "gauge", "Queries executing now.")
	e.Value("", float64(ws.Admission.Active))
	e.Family("disqo_admission_queued", "gauge", "Queries waiting for an execution slot.")
	e.Value("", float64(ws.Admission.Queued))
	e.Family("disqo_admission_queue_depth", "gauge", "Depth of the FIFO admission queue (alias of disqo_admission_queued for dashboards keyed on queue depth).")
	e.Value("", float64(ws.Admission.Queued))
	e.Family("disqo_inflight_queries", "gauge", "Public API calls currently inside the engine (the drain counter).")
	e.Value("", float64(ws.Inflight))
	e.Family("disqo_admission_admitted_total", "counter", "Execution slots granted.")
	e.Value("", float64(ws.Admission.Admitted))
	e.Family("disqo_admission_shed_total", "counter", "Admission rejections (full queue or expired wait).")
	e.Value("", float64(ws.Admission.Shed))
	e.Family("disqo_admission_queue_wait_seconds_total", "counter", "Total time queries spent queued.")
	e.Value("", ws.Admission.QueueWait.Seconds())

	e.Family("disqo_budget_limit_tuples", "gauge", "Shared tuple budget limit (0 = no budget).")
	e.Value("", float64(ws.Budget.Limit))
	e.Family("disqo_budget_resident_tuples", "gauge", "Tuples currently charged against the shared budget.")
	e.Value("", float64(ws.Budget.Resident))
	e.Family("disqo_budget_peak_tuples", "gauge", "Shared-budget high-water mark since open or reset.")
	e.Value("", float64(ws.Budget.Peak))

	if ws.WAL != nil {
		e.Family("disqo_wal_appends_total", "counter", "Records appended to the write-ahead log.")
		e.Value("", float64(ws.WAL.Appends))
		e.Family("disqo_wal_appended_bytes_total", "counter", "Frame bytes appended to the write-ahead log.")
		e.Value("", float64(ws.WAL.AppendedBytes))
		e.Family("disqo_wal_syncs_total", "counter", "WAL fsync calls (group commit batches).")
		e.Value("", float64(ws.WAL.Syncs))
		e.Family("disqo_wal_synced_bytes_total", "counter", "Bytes made durable by WAL fsyncs.")
		e.Value("", float64(ws.WAL.SyncedBytes))
		e.Family("disqo_wal_truncations_total", "counter", "WAL truncations (checkpoints completed).")
		e.Value("", float64(ws.WAL.Truncations))
		e.Family("disqo_wal_pending_records", "gauge", "Appended records not yet fsynced.")
		e.Value("", float64(ws.WAL.PendingRecords))
		e.Family("disqo_wal_last_lsn", "gauge", "Highest log sequence number appended.")
		e.Value("", float64(ws.WAL.LastLSN))
		sealed := 0.0
		if ws.WAL.Sealed {
			sealed = 1
		}
		e.Family("disqo_wal_sealed", "gauge", "1 when the WAL sealed after an append/fsync failure.")
		e.Value("", sealed)
		e.Family("disqo_wal_fsync_duration_seconds", "histogram", "WAL fsync latency (log2 buckets).")
		e.Histogram(ws.WAL.Fsync)
		e.Family("disqo_recovery_replayed_records", "gauge", "WAL records replayed by crash recovery at open.")
		e.Value("", float64(ws.RecoveryReplayedRecords))
	}

	return e.Bytes()
}
