package disqo_test

import (
	"strings"
	"sync"
	"testing"

	"disqo"
)

// Integration tests: real TPC-H queries (adapted to the dialect — dates
// are day numbers, no GROUP BY expressions) run end-to-end on generated
// data, with every strategy required to agree with canonical evaluation.

var (
	tpchOnce sync.Once
	tpchDBv  *disqo.DB
	tinyOnce sync.Once
	tinyDBv  *disqo.DB
)

func tpchTestDB(t *testing.T) *disqo.DB {
	t.Helper()
	tpchOnce.Do(func() {
		db, _ := disqo.Open()
		if err := db.LoadTPCH(0.01, "all"); err != nil {
			t.Fatal(err)
		}
		tpchDBv = db
	})
	return tpchDBv
}

// tinyTPCHDB is used by tests that compare against canonical evaluation
// of queries quadratic in |lineitem| — a smaller instance keeps the
// nested-loop reference runs fast.
func tinyTPCHDB(t *testing.T) *disqo.DB {
	t.Helper()
	tinyOnce.Do(func() {
		db, _ := disqo.Open()
		if err := db.LoadTPCH(0.002, "all"); err != nil {
			t.Fatal(err)
		}
		tinyDBv = db
	})
	return tinyDBv
}

// canonicalRows runs the query under a strategy and returns sorted rows.
func canonicalRows(t *testing.T, db *disqo.DB, sql string, s disqo.Strategy) []string {
	t.Helper()
	res, err := db.Query(sql, disqo.WithStrategy(s))
	if err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		rows[i] = strings.Join(parts, "|")
	}
	// Order-insensitive unless the query sorts; cheap insertion sort.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	return rows
}

func assertStrategiesAgree(t *testing.T, db *disqo.DB, name, sql string) {
	t.Helper()
	want := canonicalRows(t, db, sql, disqo.Canonical)
	if len(want) == 0 {
		t.Logf("%s returned no rows — still checking agreement", name)
	}
	for _, s := range []disqo.Strategy{disqo.Unnested, disqo.S2, disqo.S3, disqo.CostBased} {
		got := canonicalRows(t, db, sql, s)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("%s: %s disagrees with canonical (%d vs %d rows)", name, s, len(got), len(want))
		}
	}
}

// TPC-H Q1 (pricing summary), adapted: l_shipdate is a day number;
// the threshold 2350 ≈ 1998-09-02.
func TestTPCHQ1PricingSummary(t *testing.T) {
	db := tpchTestDB(t)
	sql := `SELECT l_returnflag, l_linestatus,
	               SUM(l_quantity) AS sum_qty,
	               SUM(l_extendedprice) AS sum_base,
	               AVG(l_quantity) AS avg_qty,
	               AVG(l_discount) AS avg_disc,
	               COUNT(*) AS count_order
	        FROM lineitem
	        WHERE l_shipdate <= 2350
	        GROUP BY l_returnflag, l_linestatus
	        ORDER BY l_returnflag, l_linestatus`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 6 {
		t.Fatalf("Q1 groups = %d", len(res.Rows))
	}
	assertStrategiesAgree(t, db, "Q1", sql)
}

// TPC-H Q2 (minimum cost supplier) — the original, conjunctive form the
// paper derived Query 2d from. Classical Eqv. 1 territory.
func TestTPCHQ2MinimumCostSupplier(t *testing.T) {
	db := tpchTestDB(t)
	sql := `SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr
	        FROM part, supplier, partsupp, nation, region
	        WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
	          AND p_size = 15 AND p_type LIKE '%BRASS'
	          AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	          AND r_name = 'EUROPE'
	          AND ps_supplycost = (SELECT MIN(ps_supplycost)
	                               FROM partsupp, supplier, nation, region
	                               WHERE s_suppkey = ps_suppkey
	                                 AND p_partkey = ps_partkey
	                                 AND s_nationkey = n_nationkey
	                                 AND n_regionkey = r_regionkey
	                                 AND r_name = 'EUROPE')
	        ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(res.Rewrites, ";"), "Eqv. 1") {
		t.Errorf("Q2 must unnest via Eqv. 1: %v", res.Rewrites)
	}
	assertStrategiesAgree(t, db, "Q2", sql)
}

// TPC-H Q6 (forecasting revenue change): pure scan + aggregate.
func TestTPCHQ6Revenue(t *testing.T) {
	db := tpchTestDB(t)
	sql := `SELECT SUM(l_extendedprice * l_discount) AS revenue
	        FROM lineitem
	        WHERE l_shipdate >= 365 AND l_shipdate < 730
	          AND l_discount BETWEEN 0.05 AND 0.07
	          AND l_quantity < 24`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("Q6 rows = %d", len(res.Rows))
	}
}

// TPC-H Q17 (small-quantity-order revenue): the classic correlated
// scalar-subquery query — conjunctive JA, Eqv. 1. The dialect has no
// scalar expressions around aggregates in subquery select lists, so the
// 0.2·AVG comparison is algebraically moved to the left side.
func TestTPCHQ17SmallQuantityOrders(t *testing.T) {
	db := tinyTPCHDB(t)
	sql := `SELECT SUM(l_extendedprice) AS total
	        FROM lineitem, part
	        WHERE p_partkey = l_partkey
	          AND (p_brand = 'Brand#11' OR p_brand = 'Brand#12')
	          AND l_quantity * 5 < (SELECT AVG(l_quantity) FROM lineitem
	                                WHERE l_partkey = p_partkey)`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(res.Rewrites, ";"), "Eqv. 1") {
		t.Errorf("Q17 must unnest via Eqv. 1: %v", res.Rewrites)
	}
	// Compare canonical vs unnested values.
	canon, err := db.Query(sql, disqo.WithStrategy(disqo.Canonical))
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Rows[0][0], canon.Rows[0][0]
	if a.String() != b.String() {
		t.Errorf("Q17: unnested %v vs canonical %v", a, b)
	}
}

// TPC-H Q4-like (order priority with EXISTS): semijoin territory.
func TestTPCHQ4OrderPriority(t *testing.T) {
	db := tinyTPCHDB(t)
	sql := `SELECT o_orderpriority, COUNT(*) AS order_count
	        FROM orders
	        WHERE o_orderdate >= 1100 AND o_orderdate < 1200
	          AND EXISTS (SELECT * FROM lineitem
	                      WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
	        GROUP BY o_orderpriority
	        ORDER BY o_orderpriority`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(res.Rewrites, ";"), "semijoin") {
		t.Errorf("Q4 must use a semijoin: %v", res.Rewrites)
	}
	assertStrategiesAgree(t, db, "Q4", sql)
}

// The paper's Query 2d itself across all strategies (small SF): the
// flagship integration check.
func TestQuery2dAllStrategiesAgree(t *testing.T) {
	db := tpchTestDB(t)
	sql := `SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
	        FROM part, supplier, partsupp, nation, region
	        WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
	          AND p_size = 15 AND p_type LIKE '%BRASS'
	          AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	          AND r_name = 'EUROPE'
	          AND (ps_supplycost = (SELECT MIN(ps_supplycost)
	                                FROM partsupp, supplier, nation, region
	                                WHERE s_suppkey = ps_suppkey
	                                  AND p_partkey = ps_partkey
	                                  AND s_nationkey = n_nationkey
	                                  AND n_regionkey = r_regionkey
	                                  AND r_name = 'EUROPE')
	               OR ps_availqty > 2000)
	        ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`
	assertStrategiesAgree(t, db, "Query 2d", sql)
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Rewrites, ";")
	if !strings.Contains(joined, "bypass cascade") {
		t.Errorf("Query 2d must use the bypass cascade: %v", res.Rewrites)
	}
}
