package disqo

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"disqo/internal/algebra"
	"disqo/internal/cache"
	"disqo/internal/catalog"
	"disqo/internal/exec"
	"disqo/internal/physical"
	"disqo/internal/sqlparser"
	"disqo/internal/stats"
	"disqo/internal/telemetry"
	"disqo/internal/types"
)

// Default cache capacities when caching is enabled without explicit
// sizes.
const (
	defaultPlanCacheBytes   = 4 << 20
	defaultResultCacheBytes = 16 << 20
)

// CacheTierStats is one cache tier's counter snapshot.
type CacheTierStats = cache.TierStats

// CacheStats reports both cache tiers; see DB.CacheStats.
type CacheStats struct {
	Plan   CacheTierStats `json:"plan"`
	Result CacheTierStats `json:"result"`
}

// CacheStats snapshots the DB's cache counters: hits, misses,
// single-flight waits, evictions, invalidations, and current residency
// per tier. Disabled tiers report zeros.
func (db *DB) CacheStats() CacheStats {
	var cs CacheStats
	if db.pcache != nil {
		cs.Plan = db.pcache.Stats()
	}
	if db.rcache != nil {
		cs.Result = db.rcache.Stats()
	}
	return cs
}

// CacheReport is attached to a query's PlanMetrics when WithMetrics is
// on: where this result came from, plus the DB-wide tier counters as of
// the query's completion.
type CacheReport struct {
	// Source is "execution" (the query ran), "result-cache" (served
	// from a resident entry), "single-flight" (joined a concurrent
	// identical query's execution), or "bypass" (a traced query, which
	// never reads or fills the result cache).
	Source string         `json:"source"`
	Plan   CacheTierStats `json:"plan"`
	Result CacheTierStats `json:"result"`
}

// CacheObserver is an optional extension a Tracer may implement to
// receive cache-tier events ("hit", "miss", "bypass") alongside its
// operator spans. Traced queries bypass the result tier (a hit would
// produce no spans to trace), so the result-tier event a tracer sees
// for its own query is always "bypass"; plan-tier hits and misses are
// reported as they happen.
type CacheObserver interface {
	CacheEvent(tier, event string)
}

// cacheEvent forwards a cache event to the query's tracer when it
// implements CacheObserver.
func cacheEvent(cfg queryConfig, tier, event string) {
	if co, ok := cfg.tracer.(CacheObserver); ok {
		co.CacheEvent(tier, event)
	}
}

// errFlightAbandoned finishes a result-cache flight whose owner bailed
// out without reporting (an early return between Acquire and the
// execution's own Finish). Waiters see it as a transient failure; the
// deferred safety net in run keeps a crashed owner from wedging them.
var errFlightAbandoned = errors.New("disqo: cached query execution abandoned")

// planInfo is the unit the plan cache stores: one optimized logical
// plan with its rewrite trace and referenced base tables. Logical plans
// are immutable after construction, so one planInfo may back any number
// of concurrent executions; the physical fingerprint is derived lazily
// (first query that needs a result-cache key pays it) and memoized.
type planInfo struct {
	plan   algebra.Op
	trace  []string
	tables []string // referenced base tables, lower-case, sorted
	// norm is the normalized statement text — the workload-telemetry
	// registry key (the same normalization the plan-cache key uses), paid
	// for once at plan build so the per-query observe path stays
	// allocation-free.
	norm string

	fpOnce sync.Once
	fp     uint64
	fpErr  error
}

// fingerprint lowers the plan (and every subquery plan reachable from
// operator expressions) to physical form and fingerprints it. The
// snapshot only supplies cardinality estimates; the fingerprint itself
// is stable for a given logical plan because algorithm selection is
// deterministic, which is why memoizing across the planInfo's lifetime
// is sound — a planInfo is only ever reused at the catalog version it
// was built against (the plan-cache key pins it).
func (pi *planInfo) fingerprint(snap catalog.Reader) (uint64, error) {
	pi.fpOnce.Do(func() {
		planner := physical.NewPlanner(stats.New(snap))
		root, err := planner.Lower(pi.plan)
		if err != nil {
			pi.fpErr = err
			return
		}
		nodes := []physical.Node{root}
		for _, sp := range collectSubplans(pi.plan) {
			if n, ok := planner.NodeFor(sp); ok {
				nodes = append(nodes, n)
			}
		}
		pi.fp = physical.Fingerprint(nodes...)
	})
	return pi.fp, pi.fpErr
}

// buildPlanInfo optimizes a statement from scratch (no cache).
func (db *DB) buildPlanInfo(snap catalog.Reader, sql string, cfg queryConfig) (*planInfo, error) {
	plan, trace, err := db.plan(snap, sql, cfg)
	if err != nil {
		return nil, err
	}
	return &planInfo{
		plan: plan, trace: trace,
		tables: collectTables(plan),
		norm:   normalizeSQL(sql),
	}, nil
}

// planFor returns the optimized plan for the statement, consulting the
// plan cache when one is configured. The key pins the normalized SQL,
// the strategy, the snapshot's catalog version, and the view epoch, so
// any DML/DDL commit or view redefinition makes stale entries stop
// matching — they are never served and age out by LRU. planHit reports
// whether optimization was skipped (a cached plan was served), which
// the telemetry layer counts per statement.
func (db *DB) planFor(snap *catalog.Snapshot, sql string, cfg queryConfig) (pi *planInfo, planHit bool, err error) {
	if db.pcache == nil {
		pi, err = db.buildPlanInfo(snap, sql, cfg)
		return pi, false, err
	}
	strat := cfg.strategy
	if strat == "" {
		strat = Unnested
	}
	key := cache.PlanKey{
		SQL:            normalizeSQL(sql),
		Strategy:       string(strat),
		Nulls:          cfg.nulls.String(),
		CatalogVersion: snap.Version(),
		ViewEpoch:      db.viewEpoch.Load(),
	}
	if v, ok := db.pcache.Get(key); ok {
		cacheEvent(cfg, "plan", "hit")
		return v.(*planInfo), true, nil
	}
	cacheEvent(cfg, "plan", "miss")
	pi, err = db.buildPlanInfo(snap, sql, cfg)
	if err != nil {
		return nil, false, err
	}
	db.pcache.Put(key, pi, planInfoBytes(sql, pi))
	return pi, false, nil
}

// cachedEntry is the unit the result cache stores: everything needed to
// reconstruct a byte-identical *Result. Rows are shared with the
// filling execution's output (results are immutable by convention, the
// same convention that lets scans share table storage); metrics is the
// filling execution's report, nil when it did not collect one.
type cachedEntry struct {
	columns  []string
	rows     [][]Value
	stats    exec.Stats
	rewrites []string
	metrics  *PlanMetrics
}

// run executes a planned query through the result cache. Flow:
//
//  1. Traced queries bypass the cache entirely (a served result would
//     produce no spans) and fault-injected queries skip both reading
//     and waiting (their fault must surface in them) — but a
//     fault-injected query still owns the flight when the key is idle,
//     so concurrent clean twins coalesce behind it and observe its
//     failure as a clean *QueryError of their own, never a poisoned
//     cache entry.
//  2. Hits and single-flight waiters return without touching the
//     admission gate — a served result consumes no execution slot.
//  3. Owners and solo runs pass the admission gate and execute; the
//     owner publishes its result (or error) to waiters and, on
//     success, fills the cache — charging the entry's tuples against
//     the shared budget while its executor still holds the execution
//     charge, so under memory pressure caching loses to live queries.
func (db *DB) run(snap *catalog.Snapshot, sql string, cfg queryConfig, pi *planInfo, planHit bool) (*Result, error) {
	start := time.Now()
	if cfg.began.IsZero() {
		cfg.began = start
	}
	// A context that is already done fails here — before the cache
	// could serve it a result it asked not to wait for.
	if cfg.ctx != nil {
		if err := cfg.ctx.Err(); err != nil {
			db.observe(pi.norm, cfg, planHit, 0, err, telemetry.SourceExecution)
			return nil, wrapQueryError(sql, cfg, time.Since(start), err)
		}
	}
	var (
		key    cache.ResultKey
		flight *cache.Flight
	)
	useCache := db.rcache != nil && cfg.tracer == nil
	if db.rcache != nil && cfg.tracer != nil {
		cacheEvent(cfg, "result", "bypass")
	}
	if useCache {
		var ok bool
		key, ok = db.resultKey(snap, cfg, pi)
		useCache = ok
	}
	if useCache {
		clean := cfg.fault == nil
		v, f, out := db.rcache.Acquire(key, clean, clean)
		switch out {
		case cache.Hit:
			if e := v.(*cachedEntry); !cfg.metrics || e.metrics != nil {
				db.observe(pi.norm, cfg, planHit, int64(len(e.rows)), nil, telemetry.SourceResultCache)
				return db.resultFromEntry(e, cfg, "result-cache", time.Since(start)), nil
			}
			// The entry lacks the per-operator report this query asked
			// for (the filler ran without WithMetrics): execute instead,
			// leaving the still-valid entry in place for plain queries.
		case cache.Waiter:
			v, err := f.Wait(cfg.ctx)
			if err != nil {
				// The owner's raw failure (or this waiter's own context
				// cancellation) wrapped as this query's error.
				db.observe(pi.norm, cfg, planHit, 0, err, telemetry.SourceSingleFlight)
				return nil, wrapQueryError(sql, cfg, time.Since(start), err)
			}
			if e := v.(*cachedEntry); !cfg.metrics || e.metrics != nil {
				db.observe(pi.norm, cfg, planHit, int64(len(e.rows)), nil, telemetry.SourceSingleFlight)
				return db.resultFromEntry(e, cfg, "single-flight", time.Since(start)), nil
			}
		case cache.Owner:
			flight = f
			// Safety net: if anything below returns without finishing
			// the flight, fail it rather than wedge the waiters.
			// Finish is idempotent, so the real outcome wins.
			defer db.rcache.Finish(key, flight, nil, errFlightAbandoned, 0, 0, nil)
		case cache.Solo:
			// Execute without owning or filling.
		}
	}

	if err := db.gate.acquire(cfg.ctx); err != nil {
		if flight != nil {
			db.rcache.Finish(key, flight, nil, err, 0, 0, nil)
		}
		db.observe(pi.norm, cfg, planHit, 0, err, telemetry.SourceExecution)
		return nil, wrapQueryError(sql, cfg, 0, err)
	}
	defer db.gate.release()

	ex := exec.New(snap, db.execOptions(cfg))
	defer ex.Close()
	execStart := time.Now()
	rel, err := ex.Run(pi.plan)
	if err != nil {
		if flight != nil {
			db.rcache.Finish(key, flight, nil, err, 0, 0, nil)
		}
		db.observe(pi.norm, cfg, planHit, 0, err, telemetry.SourceExecution)
		db.captureSlow(pi.norm, cfg, 0, err, "")
		return nil, wrapQueryError(sql, cfg, time.Since(execStart), err)
	}
	res := &Result{
		Columns:  append([]string(nil), rel.Schema.Attrs()...),
		Rows:     rel.Tuples,
		Stats:    ex.Stats(),
		Rewrites: pi.trace,
		Elapsed:  time.Since(execStart),
	}
	var pm *PlanMetrics
	var annotated string // the ANALYZE-rendered plan, built only for slow offenders
	if cfg.metrics {
		if root, err := ex.Plan(pi.plan); err == nil {
			pm = newPlanMetrics(root, subplanNodes(ex, pi.plan), ex.NodeMetrics())
			pm.Cache = db.cacheReport("execution")
			res.metrics = pm
			if th := db.tele.SlowThreshold(); th > 0 && time.Since(cfg.began) >= th {
				annotated = physical.ExplainAnnotated(root, analyzeAnnot(ex.NodeMetrics()))
			}
		}
	}
	db.observe(pi.norm, cfg, planHit, int64(len(res.Rows)), nil, telemetry.SourceExecution)
	if db.tele != nil && pm != nil {
		db.tele.ObserveOps(pi.norm, opObs(pm))
	}
	db.captureSlow(pi.norm, cfg, int64(len(res.Rows)), nil, annotated)
	if flight != nil {
		entry := &cachedEntry{
			columns:  res.Columns,
			rows:     rel.Tuples,
			stats:    res.Stats,
			rewrites: pi.trace,
			metrics:  pm,
		}
		// Fill before ex.Close releases the execution's budget charge:
		// the cached tuples are charged while the executor still holds
		// its own, so a budget near its limit declines the fill (or
		// evicts colder entries) instead of squeezing live queries.
		db.rcache.Finish(key, flight, entry, nil,
			resultBytes(entry), int64(len(rel.Tuples)), pi.tables)
	}
	return res, nil
}

// resultFromEntry reconstructs a *Result from a cached entry. Columns
// are copied (callers may reorder them); rows are shared — results are
// immutable by convention. Stats and Rewrites are the filling
// execution's, which is exactly what a fresh execution against the same
// snapshot would report; Elapsed is this call's own wall time. When the
// caller asked for metrics it gets the filler's per-operator report
// (shallow-copied, possibly empty if the filler collected none) with a
// fresh Cache section naming the source.
func (db *DB) resultFromEntry(e *cachedEntry, cfg queryConfig, source string, elapsed time.Duration) *Result {
	res := &Result{
		Columns:  append([]string(nil), e.columns...),
		Rows:     e.rows,
		Stats:    e.stats,
		Rewrites: e.rewrites,
		Elapsed:  elapsed,
	}
	if cfg.metrics {
		pm := &PlanMetrics{Root: -1}
		if e.metrics != nil {
			cp := *e.metrics
			pm = &cp
		}
		pm.Cache = db.cacheReport(source)
		res.metrics = pm
	}
	return res
}

// cacheReport assembles the metrics-attached cache section.
func (db *DB) cacheReport(source string) *CacheReport {
	cs := db.CacheStats()
	return &CacheReport{Source: source, Plan: cs.Plan, Result: cs.Result}
}

// resultKey derives the result-cache key for this execution: the
// physical-plan fingerprint, the strategy and execution path (S1 and
// Canonical share a plan but count work differently; the two paths
// produce byte-identical rows but path-dependent Stats, which the
// entry stores), and the pinned version of every referenced table.
// ok=false means the query is not cacheable (it references something
// unresolvable) and should just execute.
func (db *DB) resultKey(snap catalog.Reader, cfg queryConfig, pi *planInfo) (cache.ResultKey, bool) {
	fp, err := pi.fingerprint(snap)
	if err != nil {
		return cache.ResultKey{}, false
	}
	versions, ok := tableVersions(snap, pi.tables)
	if !ok {
		return cache.ResultKey{}, false
	}
	strat := cfg.strategy
	if strat == "" {
		strat = Unnested
	}
	return cache.ResultKey{
		Fingerprint: fp,
		Strategy:    string(strat) + "@" + cfg.path.String(),
		Nulls:       cfg.nulls.String(),
		Tables:      versions,
	}, true
}

// collectTables gathers the base tables a plan scans, including inside
// subquery plans nested in operator expressions, lower-cased and
// sorted. This is the result cache's dependency set: the key embeds
// these tables' versions, and a committed write to any of them
// invalidates the entry.
func collectTables(plan algebra.Op) []string {
	seen := map[string]bool{}
	var names []string
	visited := map[algebra.Op]bool{}
	var visit func(op algebra.Op)
	visit = func(op algebra.Op) {
		algebra.Walk(op, func(o algebra.Op) bool {
			if visited[o] {
				return false
			}
			visited[o] = true
			if s, ok := o.(*algebra.Scan); ok {
				name := strings.ToLower(s.Table)
				if !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
			}
			for _, e := range algebra.Exprs(o) {
				for _, sp := range algebra.Subplans(e) {
					visit(sp)
				}
			}
			return true
		})
	}
	visit(plan)
	sort.Strings(names)
	return names
}

// tableVersions renders the pinned version of each table as the
// "name@version;" concatenation the result key embeds. ok=false when a
// table cannot be resolved in the snapshot (the execution will fail on
// its own terms; it just is not cacheable).
func tableVersions(snap catalog.Reader, tables []string) (string, bool) {
	var b strings.Builder
	for _, name := range tables {
		t, err := snap.Lookup(name)
		if err != nil {
			return "", false
		}
		fmt.Fprintf(&b, "%s@%d;", name, t.Version)
	}
	return b.String(), true
}

// normalizeSQL collapses whitespace so trivially reformatted statements
// share one plan-cache entry. Only the lexer's whitespace set (space,
// tab, newline, carriage return) separates tokens: anything else — \f,
// \v, NBSP — must survive into the key, or a cache hit could accept
// input the parser rejects.
func normalizeSQL(sql string) string {
	return strings.Join(strings.FieldsFunc(sql, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	}), " ")
}

// planInfoBytes estimates a plan-cache entry's footprint: the SQL key
// text plus a fixed charge per logical operator (including subquery
// plans).
func planInfoBytes(sql string, pi *planInfo) int64 {
	ops := int64(0)
	count := func(root algebra.Op) {
		algebra.Walk(root, func(algebra.Op) bool { ops++; return true })
	}
	count(pi.plan)
	for _, sp := range collectSubplans(pi.plan) {
		count(sp)
	}
	return int64(2*len(sql)) + 512 + ops*256
}

// resultBytes estimates a result-cache entry's footprint: per-row slice
// headers plus a fixed charge per value, the column names, and the
// metrics report when present.
func resultBytes(e *cachedEntry) int64 {
	b := int64(256)
	for _, c := range e.columns {
		b += int64(len(c)) + 16
	}
	if n := len(e.rows); n > 0 {
		b += int64(n) * (24 + int64(len(e.rows[0]))*48)
	}
	if e.metrics != nil {
		b += int64(len(e.metrics.Ops)) * 200
	}
	return b
}

// afterWrite drops every cached result referencing the written tables.
// It runs after the commit and before the writing statement returns, so
// a writer observes its own write: version-keyed entries could never be
// served stale anyway, but the eager drop also reclaims their memory
// (and shared-budget charge) immediately.
func (db *DB) afterWrite(tables ...string) {
	if db.rcache == nil {
		return
	}
	lower := make([]string, len(tables))
	for i, t := range tables {
		lower[i] = strings.ToLower(t)
	}
	db.rcache.InvalidateTables(lower...)
}

// Stmt is a prepared statement: the SQL is parsed once at Prepare, and
// each strategy's optimized logical plan is built on first use and
// re-derived only when DDL/DML or view changes make it stale. Queries
// through a Stmt still flow through the result cache (and admission
// gate) exactly like db.Query. A Stmt is safe for concurrent use.
type Stmt struct {
	db   *DB
	sql  string
	norm string // normalized SQL, the telemetry registry key
	stmt *sqlparser.SelectStmt

	mu    sync.Mutex
	plans map[stmtKey]*stmtPlan
}

// stmtKey identifies one derived plan per statement: the strategy and
// the null mode (mode-aware rewrites can produce different trees).
type stmtKey struct {
	strat Strategy
	nulls types.NullMode
}

// stmtPlan is one strategy's cached plan with the schema state it was
// derived against.
type stmtPlan struct {
	catVersion uint64
	viewEpoch  uint64
	pi         *planInfo
}

// Prepare parses a SELECT statement once for repeated execution.
// Preparation does not touch the catalog: binding and optimization
// happen on first Query (per strategy) and re-run automatically when
// the catalog or view definitions change underneath the statement.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{
		db: db, sql: sql, norm: normalizeSQL(sql), stmt: stmt,
		plans: make(map[stmtKey]*stmtPlan),
	}, nil
}

// SQL returns the statement text as prepared.
func (s *Stmt) SQL() string { return s.sql }

// Close releases the statement's cached plans. Using the Stmt after
// Close is safe (plans are simply rebuilt); Close exists for symmetry
// with database/sql idiom.
func (s *Stmt) Close() error {
	s.mu.Lock()
	s.plans = make(map[stmtKey]*stmtPlan)
	s.mu.Unlock()
	return nil
}

// Query executes the prepared statement. Options mean exactly what they
// do on db.Query; the saved work is parsing (always) and optimization
// (whenever the catalog version and view definitions are unchanged
// since the strategy's last use).
func (s *Stmt) Query(opts ...Option) (*Result, error) {
	if err := s.db.begin(); err != nil {
		return nil, err
	}
	defer s.db.end()
	cfg := s.db.newQueryConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.began = time.Now()
	if s.db.tele.SlowThreshold() > 0 {
		cfg.metrics = true
	}
	strat := cfg.strategy
	if strat == "" {
		strat = Unnested
	}
	epoch := s.db.viewEpoch.Load()
	snap := s.db.cat.Snapshot()
	// planHit mirrors the plan-cache meaning: optimization was skipped
	// because the strategy's derived plan is still valid.
	planHit := true
	s.mu.Lock()
	sp := s.plans[stmtKey{strat, cfg.nulls}]
	if sp == nil || sp.catVersion != snap.Version() || sp.viewEpoch != epoch {
		plan, trace, err := s.db.planAST(snap, s.stmt, cfg)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		sp = &stmtPlan{
			catVersion: snap.Version(),
			viewEpoch:  epoch,
			pi: &planInfo{
				plan: plan, trace: trace,
				tables: collectTables(plan), norm: s.norm,
			},
		}
		s.plans[stmtKey{strat, cfg.nulls}] = sp
		planHit = false
	}
	pi := sp.pi
	s.mu.Unlock()
	return s.db.run(snap, s.sql, cfg, pi, planHit)
}

// QueryContext is Query with cancellation, mirroring db.QueryContext.
func (s *Stmt) QueryContext(ctx context.Context, opts ...Option) (*Result, error) {
	return s.Query(append([]Option{WithContext(ctx)}, opts...)...)
}
