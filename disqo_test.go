package disqo

import (
	"errors"
	"regexp"
	"strings"
	"testing"
	"time"
)

const q1SQL = `SELECT DISTINCT * FROM r
	WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	   OR a4 > 1500`

const q2SQL = `SELECT DISTINCT * FROM r
	WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`

func smallDB(t testing.TB) *DB {
	t.Helper()
	db, _ := Open()
	if err := db.LoadRST(0.02, 0.02, 0.02); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenCreateInsertQuery(t *testing.T) {
	db, _ := Open()
	if err := db.CreateTable("emp", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "name", Type: TypeString},
		{Name: "sal", Type: TypeFloat},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("emp",
		[]Value{Int(1), String("ada"), Float(100)},
		[]Value{Int(2), String("bob"), Float(200)},
	); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT name FROM emp WHERE sal > 150")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
	if n, _ := db.RowCount("emp"); n != 2 {
		t.Errorf("RowCount = %d", n)
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "emp" {
		t.Errorf("Tables = %v", got)
	}
	if err := db.DropTable("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM emp"); err == nil {
		t.Error("query after drop must fail")
	}
}

func TestAllStrategiesAgreeOnQ1AndQ2(t *testing.T) {
	db := smallDB(t)
	for _, sql := range []string{q1SQL, q2SQL} {
		var baseline []string
		for _, s := range Strategies() {
			res, err := db.Query(sql, WithStrategy(s))
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			rows := make([]string, len(res.Rows))
			for i, r := range res.Rows {
				parts := make([]string, len(r))
				for j, v := range r {
					parts[j] = v.String()
				}
				rows[i] = strings.Join(parts, ",")
			}
			// Order-insensitive comparison.
			sortStrings(rows)
			if baseline == nil {
				baseline = rows
				continue
			}
			if strings.Join(baseline, ";") != strings.Join(rows, ";") {
				t.Errorf("strategy %s disagrees on %q:\n%v\nvs\n%v", s, sql, baseline, rows)
			}
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestUnnestedDoesLessWork(t *testing.T) {
	db := smallDB(t)
	canonical, err := db.Query(q1SQL, WithStrategy(Canonical))
	if err != nil {
		t.Fatal(err)
	}
	unnested, err := db.Query(q1SQL, WithStrategy(Unnested))
	if err != nil {
		t.Fatal(err)
	}
	if unnested.Stats.Comparisons*2 > canonical.Stats.Comparisons {
		t.Errorf("unnested should do far fewer comparisons: %d vs %d",
			unnested.Stats.Comparisons, canonical.Stats.Comparisons)
	}
	if unnested.Stats.SubqueryEvals != 0 {
		t.Errorf("unnested Q1 must not evaluate subqueries, got %d", unnested.Stats.SubqueryEvals)
	}
	if canonical.Stats.SubqueryEvals == 0 {
		t.Error("canonical Q1 must evaluate subqueries")
	}
}

func TestS3EvaluatesFewerSubqueriesThanCanonical(t *testing.T) {
	db := smallDB(t)
	canonical, err := db.Query(q1SQL, WithStrategy(Canonical))
	if err != nil {
		t.Fatal(err)
	}
	s3, err := db.Query(q1SQL, WithStrategy(S3))
	if err != nil {
		t.Fatal(err)
	}
	// Q1's SQL puts the subquery disjunct first; S3 reorders so the cheap
	// a4 predicate short-circuits roughly half of the rows.
	if s3.Stats.SubqueryEvals >= canonical.Stats.SubqueryEvals {
		t.Errorf("S3 must evaluate fewer subqueries: %d vs %d",
			s3.Stats.SubqueryEvals, canonical.Stats.SubqueryEvals)
	}
}

func TestRewritesReported(t *testing.T) {
	db := smallDB(t)
	res, err := db.Query(q1SQL)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Rewrites, ";")
	if !strings.Contains(joined, "Eqv. 1") || !strings.Contains(joined, "bypass cascade") {
		t.Errorf("Rewrites = %v", res.Rewrites)
	}
}

func TestExplainOutputs(t *testing.T) {
	db := smallDB(t)
	out, err := db.Explain(q1SQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"canonical plan", "optimized plan", "applied rewrites", "σ±", "⟕", "Γ", "simple"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
	out, err = db.Explain(q1SQL, WithStrategy(Canonical))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "optimized plan") {
		t.Error("canonical explain must not print an optimized plan")
	}
}

func TestAnalyze(t *testing.T) {
	db := smallDB(t)
	out, err := db.Analyze(q1SQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"physical plan (analyzed)", "strategy: unnested", "comparisons:",
		"peak resident:", "actual", "est", "calls=1", "time=", "Filter±",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Analyze missing %q:\n%s", frag, out)
		}
	}
	if regexp.MustCompile(`calls=([2-9]|\d\d)`).MatchString(out) {
		t.Errorf("unnested plan must evaluate each operator once:\n%s", out)
	}
	// Canonical: the nested block is evaluated per outer tuple, visible
	// in the subquery-evals counter and in calls>1 annotations.
	out, err = db.Analyze(q1SQL, WithStrategy(Canonical))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "subquery evals: 0") {
		t.Errorf("canonical analyze must show nested evaluations:\n%s", out)
	}
	if !regexp.MustCompile(`calls=([2-9]|\d\d)`).MatchString(out) {
		t.Errorf("canonical analyze must show repeated evaluations:\n%s", out)
	}
}

// maskTimes blanks the two wall-clock fields of an Analyze report;
// everything else — est/actual rows, calls, memo hits, morsels, build
// sizes, the Stats header — must be byte-identical across worker counts.
func maskTimes(s string) string {
	s = regexp.MustCompile(`elapsed: \S+`).ReplaceAllString(s, "elapsed: <t>")
	return regexp.MustCompile(`time=[^,)]+`).ReplaceAllString(s, "time=<t>")
}

func TestAnalyzeWorkerCountIndependent(t *testing.T) {
	db, _ := Open()
	// 3000-row tables cross the 2×1024-tuple parallel threshold, so
	// Workers=4 genuinely fans out.
	if err := db.LoadRST(0.3, 0.3, 0.1); err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Unnested, Canonical} {
		w1, err := db.Analyze(q1SQL, WithStrategy(strat), WithWorkers(1))
		if err != nil {
			t.Fatalf("%s workers=1: %v", strat, err)
		}
		w4, err := db.Analyze(q1SQL, WithStrategy(strat), WithWorkers(4))
		if err != nil {
			t.Fatalf("%s workers=4: %v", strat, err)
		}
		if m1, m4 := maskTimes(w1), maskTimes(w4); m1 != m4 {
			t.Errorf("%s: EXPLAIN ANALYZE depends on worker count:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
				strat, m1, m4)
		}
	}
}

func TestResultMetrics(t *testing.T) {
	db := smallDB(t)
	res, err := db.Query(q1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics() != nil {
		t.Error("Metrics present without WithMetrics")
	}
	res, err = db.Query(q1SQL, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	pm := res.Metrics()
	if pm == nil {
		t.Fatal("WithMetrics query returned no Metrics")
	}
	root := pm.Op(pm.Root)
	if root == nil {
		t.Fatalf("report has no entry for root ID %d", pm.Root)
	}
	if root.RowsOut != int64(len(res.Rows)) {
		t.Errorf("root RowsOut = %d, want %d", root.RowsOut, len(res.Rows))
	}
	if root.Calls != 1 {
		t.Errorf("root Calls = %d, want 1", root.Calls)
	}
	if pm.TotalWall() <= 0 {
		t.Error("root wall time not recorded")
	}
	ids := map[int]bool{}
	for _, op := range pm.Ops {
		if ids[op.ID] {
			t.Errorf("node #%d reported twice", op.ID)
		}
		ids[op.ID] = true
		for _, c := range op.Children {
			if !ids[c] {
				// Children may appear later in pre-order only when shared;
				// they must at least exist somewhere in the report.
				if pm.Op(c) == nil {
					t.Errorf("node #%d references missing child #%d", op.ID, c)
				}
			}
		}
	}
	// Canonical keeps the subquery as a separate plan evaluated per
	// outer tuple: its report must include ops with Calls > 1.
	res, err = db.Query(q1SQL, WithMetrics(), WithStrategy(Canonical))
	if err != nil {
		t.Fatal(err)
	}
	repeated := false
	for _, op := range res.Metrics().Ops {
		if op.Calls > 1 {
			repeated = true
		}
	}
	if !repeated {
		t.Error("canonical metrics show no per-outer-tuple re-evaluation")
	}
}

func TestTimeoutOption(t *testing.T) {
	db, _ := Open()
	if err := db.LoadRST(0.5, 0.5, 0.1); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(q1SQL, WithStrategy(S1), WithTimeout(time.Millisecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

func TestCostBasedPicksWinners(t *testing.T) {
	db := smallDB(t)
	// Q1: unnesting is a clear win.
	res, err := db.Query(q1SQL, WithStrategy(CostBased))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Rewrites, ";")
	if !strings.Contains(joined, "cost-based choice: unnested") {
		t.Errorf("Q1 should choose unnested: %v", res.Rewrites)
	}
	// Non-decomposable disjunctive correlation at this scale: Eqv. 5's
	// complement enumeration estimates worse than canonical.
	eqv5SQL := `SELECT DISTINCT * FROM r
	            WHERE a1 = (SELECT COUNT(DISTINCT b1) FROM s WHERE a2 = b2 OR b4 > 1500)`
	res, err = db.Query(eqv5SQL, WithStrategy(CostBased))
	if err != nil {
		t.Fatal(err)
	}
	joined = strings.Join(res.Rewrites, ";")
	if !strings.Contains(joined, "cost-based choice: canonical") {
		t.Errorf("Eqv. 5 case should choose canonical: %v", res.Rewrites)
	}
	// Results must match the forced strategies either way.
	forced, err := db.Query(eqv5SQL, WithStrategy(Unnested))
	if err != nil {
		t.Fatal(err)
	}
	if len(forced.Rows) != len(res.Rows) {
		t.Errorf("cost-based result differs: %d vs %d rows", len(res.Rows), len(forced.Rows))
	}
}

func TestTupleLimitOption(t *testing.T) {
	db := smallDB(t)
	_, err := db.Query(q1SQL, WithStrategy(Canonical), WithTupleLimit(50))
	if !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("expected ErrMemoryLimit, got %v", err)
	}
	// A generous limit succeeds.
	if _, err := db.Query(q1SQL, WithTupleLimit(1_000_000)); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownStrategy(t *testing.T) {
	db := smallDB(t)
	if _, err := db.Query("SELECT * FROM r", WithStrategy("bogus")); err == nil {
		t.Error("unknown strategy must error")
	}
}

func TestQueryErrors(t *testing.T) {
	db := smallDB(t)
	if _, err := db.Query("SELEC nonsense"); err == nil {
		t.Error("parse error expected")
	}
	if _, err := db.Query("SELECT zz FROM r"); err == nil {
		t.Error("resolution error expected")
	}
	if _, err := db.Explain("SELEC nonsense"); err == nil {
		t.Error("explain parse error expected")
	}
}

func TestResultString(t *testing.T) {
	db := smallDB(t)
	res, err := db.Query("SELECT a1, a2 FROM r WHERE a1 < 3 ORDER BY a1")
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "r.a1") || !strings.Contains(out, "rows)") {
		t.Errorf("Result.String = %s", out)
	}
}

func TestExecDDLAndDML(t *testing.T) {
	db, _ := Open()
	if _, err := db.Exec("CREATE TABLE emp (id INT, name VARCHAR(10), sal DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	n, err := db.Exec("INSERT INTO emp VALUES (1, 'ada', 100.5), (2, NULL, -3.25)")
	if err != nil || n != 2 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	res, err := db.Query("SELECT id FROM emp WHERE sal > 0")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("select after insert: %v, %v", res, err)
	}
	if _, err := db.Exec("DROP TABLE emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO emp VALUES (1, 'x', 1)"); err == nil {
		t.Error("insert into dropped table must fail")
	}
	if _, err := db.Exec("SELECT * FROM emp"); err == nil {
		t.Error("Exec must reject SELECT")
	}
	if _, err := db.Exec("INSERT INTO nope VALUES (1)"); err == nil {
		t.Error("insert into missing table must fail")
	}
}

func TestLoadTPCHThroughAPI(t *testing.T) {
	db, _ := Open()
	if err := db.LoadTPCH(0.01); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*) AS n FROM partsupp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 8000 {
		t.Errorf("partsupp count = %v", res.Rows[0][0])
	}
	db2, _ := Open()
	if err := db2.LoadTPCH(0.001, "all"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Query("SELECT COUNT(*) AS n FROM lineitem"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadOnlyQueries(t *testing.T) {
	db := smallDB(t)
	// Warm statistics once; afterwards concurrent read-only queries must
	// be safe (each executor is private; the catalog is read-only).
	if _, err := db.Query(q1SQL); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(strategy Strategy) {
			for i := 0; i < 5; i++ {
				if _, err := db.Query(q1SQL, WithStrategy(strategy)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(Strategies()[w%len(Strategies())])
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
