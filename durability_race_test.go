// Races the durability layer was built to survive: checkpoints cutting
// the log while DML commits, Close arriving while a replica apply loop
// is mid-record, and Close immediately after a recovery replay. All
// leak-checked; tier-1 runs this file under -race, which is where the
// lock-ordering guarantees (replicaMu before writeMu, checkpoint under
// writeMu) actually get exercised.
package disqo_test

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"disqo"
	"disqo/internal/testutil"
	"disqo/internal/wal"
)

// TestCheckpointRacesDML hammers Checkpoint from one goroutine while
// four writers commit DML: every statement must land exactly once in
// the recovered image regardless of which side of a log truncation it
// fell on.
func TestCheckpointRacesDML(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	db, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE race (w INTEGER, i INTEGER)"); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 50
	var writerWG, ckptWG sync.WaitGroup
	stopCkpt := make(chan struct{})
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint under DML: %v", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO race VALUES (%d, %d)", w, i)); err != nil {
					t.Errorf("writer %d insert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stopCkpt)
	ckptWG.Wait()

	want := db.StateFingerprint()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatalf("recovery after checkpoint/DML race: %v", err)
	}
	defer db2.Close()
	if got := db2.StateFingerprint(); got != want {
		t.Fatalf("recovered fingerprint %016x != live %016x", got, want)
	}
	res, err := db2.Query("SELECT COUNT(*) FROM race")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].IntOk(); n != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", n, writers*perWriter)
	}
}

// TestCloseDuringReplicaApply drives a real writer's WAL records into a
// replica from one goroutine and closes the replica mid-stream from
// another. The apply loop must end with ErrClosed (never deadlock
// between replicaMu, writeMu, and the drain latch), and whatever prefix
// applied must be consistent.
func TestCloseDuringReplicaApply(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Build a real record stream: a writer's log carries the catalog
	// pre-image versions the apply path verifies against.
	dir := t.TempDir()
	w, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := w.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(wal.LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := wal.Scan(data)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 8; trial++ {
		rdb, err := disqo.Open()
		if err != nil {
			t.Fatal(err)
		}
		applied := make(chan int, 1)
		closeAt := make(chan struct{})
		go func() {
			n := 0
			for i, rec := range recs {
				if i == 3+trial*9 {
					close(closeAt)
				}
				if err := rdb.ReplicaApplyRecord(rec); err != nil {
					if !errors.Is(err, disqo.ErrClosed) {
						t.Errorf("trial %d: apply error %v, want ErrClosed", trial, err)
					}
					break
				}
				n++
			}
			applied <- n
		}()
		<-closeAt
		if err := rdb.Close(); err != nil {
			t.Fatalf("trial %d: close during apply: %v", trial, err)
		}
		n := <-applied
		if got := rdb.ReplicaState().AppliedLSN; got != recs[n-1].LSN {
			t.Fatalf("trial %d: applied LSN %d after %d records, want %d", trial, got, n, recs[n-1].LSN)
		}
	}
}

// TestCloseImmediatelyAfterRecovery closes the instant Open returns
// from a replay-heavy directory. Close cannot arrive *during* recovery
// — replay runs inside Open, before any handle exists to close — so
// the adversarial window is the first instant afterwards: the WAL is
// live, the group-commit ticker may be armed, and nothing has ever
// been queried.
func TestCloseImmediatelyAfterRecovery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	db, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	want := db.StateFingerprint()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		db, err := disqo.Open(disqo.WithDataDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		if ws := db.WorkloadStats(); ws.RecoveryReplayedRecords == 0 {
			t.Fatal("directory opened without replaying anything; the test lost its teeth")
		}
		if got := db.StateFingerprint(); got != want {
			t.Fatalf("open %d: fingerprint %016x != %016x", i, got, want)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("immediate close %d: %v", i, err)
		}
	}
}
