package disqo_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"disqo"
	"disqo/internal/testutil"
)

const cancelQ1 = `SELECT DISTINCT * FROM r
                  WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
                     OR a4 > 1500`

// TestCancellationStress cancels a long canonical query mid-flight 100
// times: every run must return promptly (the context is polled at every
// morsel boundary, so cancellation lands within one morsel's worth of
// work), surface context.Canceled through a *QueryError, and leave no
// goroutines behind. Run under -race in tier-1, this also shakes out
// ordering bugs between the abort latch, the worker pool, and the
// single-flight memo.
func TestCancellationStress(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db, _ := disqo.Open()
	// 3000-row relations: large enough that the canonical strategy's
	// per-tuple subquery re-evaluation runs for seconds if never
	// cancelled, and large enough to fan out across morsel workers.
	if err := db.LoadRST(0.3, 0.3, 0.3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := db.QueryContext(ctx, cancelQ1,
				disqo.WithStrategy(disqo.Canonical), disqo.WithWorkers(4))
			done <- err
		}()
		// Stagger the cancel point across iterations, including an
		// immediate cancel that races query startup.
		time.Sleep(time.Duration(i%5) * time.Millisecond)
		cancel()
		start := time.Now()
		var err error
		select {
		case err = <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: query still running 10s after cancel", i)
		}
		// Generous bound for -race and a loaded CI box; without the
		// morsel-boundary polling this is minutes, not milliseconds.
		if wait := time.Since(start); wait > 2*time.Second {
			t.Fatalf("iteration %d: cancellation took %s", i, wait)
		}
		if err == nil {
			continue // the query finished before the cancel landed
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled in the chain", i, err)
		}
		var qe *disqo.QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("iteration %d: error %T does not unwrap to *disqo.QueryError", i, err)
		}
		if qe.Elapsed <= 0 {
			t.Fatalf("iteration %d: QueryError carries no elapsed time", i)
		}
	}
}

// TestQueryContextPreCancelled covers the fast path: a context that is
// already done must fail before any evaluation starts.
func TestQueryContextPreCancelled(t *testing.T) {
	db, _ := disqo.Open()
	if err := db.LoadRST(0.02, 0.02, 0.02); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, cancelQ1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryContextDeadline covers context.DeadlineExceeded as distinct
// from the engine's own ErrTimeout.
func TestQueryContextDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db, _ := disqo.Open()
	if err := db.LoadRST(0.3, 0.3, 0.3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, cancelQ1, disqo.WithStrategy(disqo.Canonical))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, disqo.ErrTimeout) {
		t.Fatal("context deadline must not be conflated with disqo.ErrTimeout")
	}
}
