// Command dbgen generates the evaluation datasets (RST or TPC-H) and
// writes them as CSV files, one per table — useful for inspecting the
// data or loading it elsewhere.
//
// Usage:
//
//	dbgen -rst 1 -out data/            # r.csv, s.csv, t.csv at 10k rows
//	dbgen -tpch 0.01 -out data/        # the 5 Query 2d tables
//	dbgen -tpch 0.01 -all -out data/   # all 8 tables
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"disqo"
)

func main() {
	var (
		rstSF  = flag.Float64("rst", 0, "RST scale factor")
		tpchSF = flag.Float64("tpch", 0, "TPC-H scale factor")
		all    = flag.Bool("all", false, "with -tpch: all 8 tables")
		out    = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	db, err := disqo.Open()
	if err != nil {
		fatal(err)
	}
	switch {
	case *rstSF > 0:
		if err := db.LoadRST(*rstSF, *rstSF, *rstSF); err != nil {
			fatal(err)
		}
	case *tpchSF > 0:
		tables := []string(nil)
		if *all {
			tables = []string{"all"}
		}
		if err := db.LoadTPCH(*tpchSF, tables...); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("pass -rst or -tpch (see -h)"))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, table := range db.Tables() {
		path := filepath.Join(*out, table+".csv")
		if err := dump(db, table, path); err != nil {
			fatal(err)
		}
		n, _ := db.RowCount(table)
		fmt.Printf("wrote %s (%d rows)\n", path, n)
	}
}

func dump(db *disqo.DB, table, path string) error {
	res, err := db.Query("SELECT * FROM " + table)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	// Header: strip the qualifier for readability.
	heads := make([]string, len(res.Columns))
	for i, c := range res.Columns {
		if _, name, ok := strings.Cut(c, "."); ok {
			heads[i] = name
		} else {
			heads[i] = c
		}
	}
	fmt.Fprintln(w, strings.Join(heads, ","))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = csvCell(v)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func csvCell(v disqo.Value) string {
	if v.IsNull() {
		return ""
	}
	if s, ok := v.StrOk(); ok {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	return v.String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dbgen: %v\n", err)
	os.Exit(1)
}
