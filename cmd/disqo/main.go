// Command disqo is an interactive SQL shell over a generated dataset.
//
// Usage:
//
//	disqo -rst 0.1                 # REPL over RST at 1,000 rows per table
//	disqo -tpch 0.01               # REPL over TPC-H SF 0.01
//	disqo -rst 0.1 -e "SELECT ..." # one-shot query
//	disqo -strategy canonical ...  # pick an evaluation strategy
//	disqo -seed 319                # reproduce adversarial scenario 319
//	disqo -connect localhost:4333  # remote shell against a disqod server
//
// Inside the REPL:
//
//	\explain SELECT ...           show canonical + optimized plans and rewrites
//	\explain analyze SELECT ...   execute and annotate the physical plan
//	\analyze SELECT ...           same as \explain analyze
//	\stats                        show the last query's execution counters
//	\cache                        show plan/result cache counters
//	\checkpoint                   snapshot the catalog and truncate the WAL (-data)
//	\wal                          show write-ahead log counters (-data)
//	\top [n]                      top statements by total wall time
//	\slow                         dump the slow-query ring
//	\strategy s2                  switch strategy
//	\set nulls 2vl                switch null semantics (2vl or 3vl)
//	\tables                       list tables
//	\q                            quit
//
// With -trace spans.jsonl every query streams per-operator
// open/morsel/close events as JSON lines to the file.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"disqo"
	"disqo/internal/exec"
	"disqo/internal/scenario"
)

func main() {
	var (
		rstSF     = flag.Float64("rst", 0, "load RST at this scale factor (paper SF 1 = 10,000 rows)")
		tpchSF    = flag.Float64("tpch", 0, "load TPC-H at this scale factor")
		full      = flag.Bool("tpch-all", false, "generate all 8 TPC-H tables (default: the 5 Query 2d uses)")
		strategy  = flag.String("strategy", string(disqo.Unnested), "evaluation strategy: s1,s2,s3,canonical,unnested")
		path      = flag.String("path", "", "execution path: row or vector (default: vector with per-node row fallback)")
		nulls     = flag.String("nulls", "3vl", "null semantics: 3vl (SQL three-valued) or 2vl (NULL comparisons are false)")
		seedFlag  = flag.String("seed", "", "reproduce adversarial scenario N: load its generated tables and run its query (combine with -strategy/-path/-nulls to compare matrix cells; -e overrides the query)")
		execSQL   = flag.String("e", "", "execute one statement and exit")
		explain   = flag.Bool("explain", false, "with -e: explain instead of executing")
		timeout   = flag.Duration("timeout", 0, "query timeout (0 = none)")
		maxConc   = flag.Int("max-concurrent", 0, "admission limit on concurrent queries (0 = engine default, <0 = unlimited)")
		traceOut  = flag.String("trace", "", "stream per-operator spans as JSON lines to this file")
		noCache   = flag.Bool("no-cache", false, "disable the plan and result caches (every query re-plans and re-executes)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /statz and /debug/pprof on this address (e.g. localhost:6060)")
		slowAfter = flag.Duration("slow-after", 0, "capture queries at or over this duration in the slow-query log (see \\slow)")
		dataDir   = flag.String("data", "", "durable mode: write-ahead log and checkpoints in this directory (recovers on start)")
		syncEvery = flag.Int("sync-every", 0, "with -data: fsync the WAL after every nth record (group commit; 0/1 = every record)")
		syncEach  = flag.Duration("sync-interval", 0, "with -data: background WAL fsync interval (bounds a group-commit batch's age)")
		ckptEvery = flag.Int("checkpoint-every", 0, "with -data: auto-checkpoint after every n logged records (0 = manual \\checkpoint only)")
		connect   = flag.String("connect", "", "connect to a disqod server at this address instead of embedding the engine")
	)
	flag.Parse()

	if *connect != "" {
		connectMode(*connect, *execSQL, *timeout)
		return
	}

	openOpts := []disqo.OpenOption{disqo.WithMaxConcurrent(*maxConc)}
	if *noCache {
		openOpts = append(openOpts, disqo.WithoutCache())
	}
	if *debugAddr != "" {
		openOpts = append(openOpts, disqo.WithDebugAddr(*debugAddr))
	}
	if *slowAfter > 0 {
		openOpts = append(openOpts, disqo.WithSlowQueryThreshold(*slowAfter))
	}
	if *dataDir != "" {
		openOpts = append(openOpts, disqo.WithDataDir(*dataDir),
			disqo.WithSyncEvery(*syncEvery), disqo.WithSyncInterval(*syncEach),
			disqo.WithCheckpointEvery(*ckptEvery))
	}
	db, err := disqo.Open(openOpts...)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if *dataDir != "" {
		ws := db.WorkloadStats()
		tables := "no tables"
		if ts := db.Tables(); len(ts) > 0 {
			tables = strings.Join(ts, ", ")
		}
		fmt.Fprintf(os.Stderr, "durable mode: %s (recovered %d WAL records; %s)\n",
			*dataDir, ws.RecoveryReplayedRecords, tables)
	}
	if *debugAddr != "" {
		addr, err := db.DebugAddr()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug listener on http://%s (/metrics, /statz, /debug/pprof)\n", addr)
	}
	if *rstSF > 0 {
		if err := db.LoadRST(*rstSF, *rstSF, *rstSF); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded RST at SF %g (%d rows per table)\n", *rstSF, int(*rstSF*10000))
	}
	if *tpchSF > 0 {
		tables := []string(nil)
		if *full {
			tables = []string{"all"}
		}
		if err := db.LoadTPCH(*tpchSF, tables...); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded TPC-H at SF %g: %s\n", *tpchSF, strings.Join(db.Tables(), ", "))
	}
	scenarioSQL := ""
	if *seedFlag != "" {
		n, err := strconv.ParseUint(*seedFlag, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -seed %q (want an unsigned integer)", *seedFlag))
		}
		sc := scenario.Generate(n)
		if err := scenario.Load(db, sc); err != nil {
			fatal(err)
		}
		scenarioSQL = sc.Query.SQL()
		fmt.Fprintf(os.Stderr, "loaded scenario seed %d (%s shape, %d tables)\nquery: %s\n",
			n, sc.Query.Shape, len(sc.Tables), scenarioSQL)
	}
	if *rstSF == 0 && *tpchSF == 0 && *seedFlag == "" {
		fmt.Fprintln(os.Stderr, "no data loaded; use -rst, -tpch or -seed (see -h)")
	}

	sess := &session{db: db, strategy: disqo.Strategy(*strategy), timeout: *timeout}
	if m, ok := parseNulls(*nulls); ok {
		sess.nulls = m
	} else {
		fatal(fmt.Errorf("bad -nulls %q (want 2vl or 3vl)", *nulls))
	}
	if *path != "" {
		p, ok := exec.ParsePath(*path)
		if !ok {
			fatal(fmt.Errorf("bad -path %q (want row or vector)", *path))
		}
		sess.path, sess.pathSet = p, true
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sess.tracer = newJSONLTracer(f)
	}
	// -seed without -e is a one-shot reproduction: run the scenario's
	// generated query under the chosen strategy/path/nulls and exit.
	if *execSQL == "" && scenarioSQL != "" {
		*execSQL = scenarioSQL
	}
	if *execSQL != "" {
		if *explain {
			sess.explain(*execSQL)
		} else {
			sess.run(*execSQL)
		}
		return
	}
	sess.repl()
}

type session struct {
	db       *disqo.DB
	strategy disqo.Strategy
	timeout  time.Duration
	tracer   *jsonlTracer
	// path pins the execution path when pathSet; otherwise queries use
	// the engine default (vector with per-node row fallback).
	path    disqo.ExecutionPath
	pathSet bool
	// nulls selects the null semantics every query runs under
	// (\set nulls 2vl|3vl).
	nulls disqo.NullMode
	// last is the most recent successful query result, for \stats.
	last *disqo.Result
}

// parseNulls maps a user-facing mode name to a NullMode.
func parseNulls(name string) (disqo.NullMode, bool) {
	switch strings.ToLower(name) {
	case "3vl", "three", "sql":
		return disqo.ThreeValuedNulls, true
	case "2vl", "two":
		return disqo.TwoValuedNulls, true
	}
	return disqo.ThreeValuedNulls, false
}

func (s *session) options() []disqo.Option {
	opts := []disqo.Option{disqo.WithStrategy(s.strategy), disqo.WithNullMode(s.nulls)}
	if s.timeout > 0 {
		opts = append(opts, disqo.WithTimeout(s.timeout))
	}
	if s.pathSet {
		opts = append(opts, disqo.WithExecutionPath(s.path))
	}
	if s.tracer != nil {
		opts = append(opts, disqo.WithTracer(s.tracer))
	}
	return opts
}

// queryContext returns a context that a single Ctrl-C cancels, so an
// interrupt aborts the running query instead of the shell. The stop
// function restores default signal handling, making a second Ctrl-C
// (or one at the prompt) kill the process as usual.
func queryContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

func reportError(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "canceled")
		return
	}
	if errors.Is(err, disqo.ErrOverloaded) {
		fmt.Fprintln(os.Stderr, "overloaded: too many concurrent queries, retry shortly")
		return
	}
	fmt.Fprintf(os.Stderr, "error: %v\n", err)
}

func (s *session) run(sql string) {
	if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "SELECT") {
		n, err := s.db.Exec(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		fmt.Printf("ok (%d rows affected)\n", n)
		return
	}
	ctx, stop := queryContext()
	res, err := s.db.QueryContext(ctx, sql, s.options()...)
	stop()
	if err != nil {
		reportError(err)
		return
	}
	s.last = res
	fmt.Print(res.String())
	fmt.Printf("elapsed: %s  comparisons: %d  subquery evals: %d\n",
		res.Elapsed.Round(time.Microsecond), res.Stats.Comparisons, res.Stats.SubqueryEvals)
	if len(res.Rewrites) > 0 {
		fmt.Printf("rewrites: %s\n", strings.Join(res.Rewrites, "; "))
	}
}

func (s *session) explain(sql string) {
	out, err := s.db.Explain(sql, s.options()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	fmt.Print(out)
}

func (s *session) analyze(sql string) {
	ctx, stop := queryContext()
	out, err := s.db.Analyze(sql, append(s.options(), disqo.WithContext(ctx))...)
	stop()
	if err != nil {
		reportError(err)
		return
	}
	fmt.Print(out)
	cs := s.db.CacheStats()
	fmt.Printf("cache: plan %d/%d hit/miss, result %d/%d hit/miss (%d waits)\n",
		cs.Plan.Hits, cs.Plan.Misses, cs.Result.Hits, cs.Result.Misses, cs.Result.Waits)
}

// cacheReport prints the DB-wide cache counters, one line per tier.
func (s *session) cacheReport() {
	cs := s.db.CacheStats()
	row := func(name string, t disqo.CacheTierStats) {
		fmt.Printf("%-7s hits: %-7d misses: %-7d waits: %-5d evictions: %-5d invalidations: %-5d entries: %-5d bytes: %d\n",
			name, t.Hits, t.Misses, t.Waits, t.Evictions, t.Invalidations, t.Entries, t.Bytes)
	}
	row("plan", cs.Plan)
	row("result", cs.Result)
}

// top prints the n statements that consumed the most total wall time,
// with their p95 latency and cache-hit rate.
func (s *session) top(n int) {
	ws := s.db.WorkloadStats()
	if !ws.Enabled {
		fmt.Println("telemetry is disabled")
		return
	}
	if len(ws.Statements) == 0 {
		fmt.Println("no statements observed yet")
		return
	}
	if n > len(ws.Statements) {
		n = len(ws.Statements)
	}
	fmt.Printf("%-8s %-7s %-6s %-5s %-10s %-10s %-8s  %s\n",
		"calls", "errors", "sheds", "hit%", "total", "p95", "fp", "sql")
	for _, st := range ws.Statements[:n] {
		sql := st.SQL
		if len(sql) > 60 {
			sql = sql[:57] + "..."
		}
		fmt.Printf("%-8d %-7d %-6d %-5.0f %-10s %-10s %-8s  %s\n",
			st.Calls, st.Errors, st.Sheds, 100*st.CacheHitRate(),
			st.TotalWall.Round(time.Microsecond),
			st.Latency.P95.Round(time.Microsecond),
			st.Fingerprint[:8], sql)
	}
	if ws.DroppedStatements > 0 {
		fmt.Printf("(%d observations dropped: statement registry full)\n", ws.DroppedStatements)
	}
}

// slow dumps the slow-query ring, newest first.
func (s *session) slow() {
	ws := s.db.WorkloadStats()
	if !ws.Enabled {
		fmt.Println("telemetry is disabled")
		return
	}
	if ws.SlowTotal == 0 {
		fmt.Println("no slow queries captured (arm with -slow-after)")
		return
	}
	fmt.Printf("%d slow queries captured, showing newest %d:\n", ws.SlowTotal, len(ws.SlowQueries))
	for _, q := range ws.SlowQueries {
		fmt.Printf("\n[%s] %s  strategy=%s path=%s rows=%d\n",
			q.Time.Format("15:04:05.000"), q.Elapsed.Round(time.Microsecond),
			q.Strategy, q.Path, q.Rows)
		fmt.Printf("  %s\n", q.SQL)
		if q.Err != "" {
			fmt.Printf("  error: %s\n", q.Err)
		}
		if q.Plan != "" {
			for _, line := range strings.Split(strings.TrimRight(q.Plan, "\n"), "\n") {
				fmt.Printf("  %s\n", line)
			}
		}
	}
}

// wal prints the write-ahead log's counters (durable mode only).
func (s *session) wal() {
	st, ok := s.db.WALStats()
	if !ok {
		fmt.Println("not in durable mode (start with -data <dir>)")
		return
	}
	ws := s.db.WorkloadStats()
	fmt.Printf("appends:    %-8d (%d bytes)\n", st.Appends, st.AppendedBytes)
	fmt.Printf("fsyncs:     %-8d (%d bytes; p95 %s)\n", st.Syncs, st.SyncedBytes, st.Fsync.P95.Round(time.Microsecond))
	fmt.Printf("pending:    %d records unsynced\n", st.PendingRecords)
	fmt.Printf("last LSN:   %d\n", st.LastLSN)
	fmt.Printf("truncations: %d (checkpoints)\n", st.Truncations)
	fmt.Printf("recovered:  %d records replayed at open\n", ws.RecoveryReplayedRecords)
	if st.Sealed {
		fmt.Println("SEALED: a WAL write failed; restart the process to recover")
	}
}

// stats prints the execution counters of the last successful query.
func (s *session) stats() {
	if s.last == nil {
		fmt.Println("no query executed yet")
		return
	}
	st := s.last.Stats
	fmt.Printf("elapsed:        %s\n", s.last.Elapsed.Round(time.Microsecond))
	fmt.Printf("comparisons:    %d\n", st.Comparisons)
	fmt.Printf("tuples out:     %d\n", st.TuplesOut)
	fmt.Printf("peak resident:  %d tuples\n", st.PeakTuples)
	fmt.Printf("subquery evals: %d\n", st.SubqueryEvals)
	fmt.Printf("operator evals: %d\n", st.OpEvals)
	fmt.Printf("hash joins:     %d   nl joins: %d   sorted groups: %d\n",
		st.HashJoins, st.NLJoins, st.SortedGroups)
}

func (s *session) repl() {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Printf("disqo(%s)> ", s.strategy)
		} else {
			fmt.Print("      ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !s.command(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			s.run(sql)
		}
		prompt()
	}
}

// command handles backslash metacommands; returns false to quit.
func (s *session) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\tables":
		fmt.Println(strings.Join(s.db.Tables(), "\n"))
		for _, v := range s.db.Views() {
			fmt.Printf("%s (view)\n", v)
		}
	case "\\strategy":
		if len(fields) != 2 {
			fmt.Printf("current strategy: %s\n", s.strategy)
			break
		}
		s.strategy = disqo.Strategy(fields[1])
		fmt.Printf("strategy set to %s\n", s.strategy)
	case "\\set":
		if len(fields) != 3 || fields[1] != "nulls" {
			fmt.Printf("usage: \\set nulls 2vl|3vl (current: %s)\n", s.nulls)
			break
		}
		m, ok := parseNulls(fields[2])
		if !ok {
			fmt.Printf("bad mode %q (want 2vl or 3vl)\n", fields[2])
			break
		}
		s.nulls = m
		fmt.Printf("nulls set to %s\n", s.nulls)
	case "\\explain":
		rest := strings.TrimPrefix(line, "\\explain ")
		// `\explain analyze <sql>` is EXPLAIN ANALYZE: execute and
		// annotate the physical plan with actual counters.
		if len(fields) > 1 && strings.EqualFold(fields[1], "analyze") {
			s.analyze(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[1])))
			break
		}
		s.explain(rest)
	case "\\analyze":
		s.analyze(strings.TrimPrefix(line, "\\analyze "))
	case "\\stats":
		s.stats()
	case "\\cache":
		s.cacheReport()
	case "\\top":
		n := 10
		if len(fields) == 2 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				fmt.Printf("usage: \\top [n]\n")
				break
			}
			n = v
		}
		s.top(n)
	case "\\slow":
		s.slow()
	case "\\checkpoint":
		if err := s.db.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Println("checkpoint written, WAL truncated")
	case "\\wal":
		s.wal()
	case "\\help":
		fmt.Println("\\explain <sql>           show plans and rewrites\n\\explain analyze <sql>   execute and annotate the physical plan\n\\analyze <sql>           same as \\explain analyze\n\\stats                   show the last query's execution counters\n\\cache                   show plan/result cache counters\n\\top [n]                 top statements by total wall time (default 10)\n\\slow                    dump the slow-query ring (arm with -slow-after)\n\\checkpoint              snapshot the catalog and truncate the WAL (-data)\n\\wal                     show write-ahead log counters (-data)\n\\strategy <s>            switch strategy\n\\set nulls 2vl|3vl       switch null semantics\n\\tables                  list tables\n\\q                       quit")
	default:
		fmt.Printf("unknown command %s (try \\help)\n", fields[0])
	}
	return true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "disqo: %v\n", err)
	os.Exit(1)
}
