package main

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"disqo"
)

// remoteSession is the -connect REPL: the same shell surface, but every
// statement goes over the wire to a disqod server via disqo.Client. The
// client reconnects transparently on read paths, so a server restart
// mid-session costs one retry, not the shell.
type remoteSession struct {
	c    *disqo.Client
	addr string
	last *disqo.Result
}

// connectMode dials addr and runs either a one-shot statement or the
// remote REPL. Called from main when -connect is set.
func connectMode(addr, execSQL string, timeout time.Duration) {
	opts := []disqo.ClientOption{}
	if timeout > 0 {
		opts = append(opts, disqo.WithClientRequestTimeout(timeout))
	}
	c, err := disqo.Dial(addr, opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	rs := &remoteSession{c: c, addr: addr}
	if st, err := c.Ping(nil); err == nil {
		extra := ""
		if st.Role == "replica" {
			extra = fmt.Sprintf(" (applied LSN %d, staleness %s)", st.AppliedLSN, st.Staleness.Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr, "connected to %s: %s, %d sessions%s\n", addr, st.Role, st.Sessions, extra)
	}
	if execSQL != "" {
		rs.run(execSQL)
		return
	}
	rs.repl()
}

func (rs *remoteSession) run(sql string) {
	if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "SELECT") {
		n, err := rs.c.Exec(sql)
		if err != nil {
			rs.report(err)
			return
		}
		fmt.Printf("ok (%d rows affected)\n", n)
		return
	}
	ctx, stop := queryContext()
	res, err := rs.c.QueryContext(ctx, sql)
	stop()
	if err != nil {
		rs.report(err)
		return
	}
	rs.last = res
	fmt.Print(res.String())
	fmt.Printf("elapsed: %s  comparisons: %d  subquery evals: %d\n",
		res.Elapsed.Round(time.Microsecond), res.Stats.Comparisons, res.Stats.SubqueryEvals)
}

func (rs *remoteSession) report(err error) {
	var se *disqo.ServerError
	switch {
	case errors.As(err, &se):
		fmt.Fprintf(os.Stderr, "server error [%s]: %s\n", se.Kind, se.Message)
	case errors.Is(err, disqo.ErrConnection):
		fmt.Fprintf(os.Stderr, "connection failure (retries exhausted): %v\n", err)
	default:
		reportError(err)
	}
}

func (rs *remoteSession) ping() {
	st, err := rs.c.Ping(nil)
	if err != nil {
		rs.report(err)
		return
	}
	fmt.Printf("role:      %s\n", st.Role)
	fmt.Printf("sessions:  %d (%d conns)\n", st.Sessions, st.Conns)
	if st.Draining {
		fmt.Println("draining:  yes — finish up and reconnect elsewhere")
	}
	if st.Role == "replica" {
		fmt.Printf("applied:   LSN %d\n", st.AppliedLSN)
		fmt.Printf("staleness: %s since last writer contact\n", st.Staleness.Round(time.Millisecond))
	}
}

func (rs *remoteSession) repl() {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Printf("disqo(%s)> ", rs.addr)
		} else {
			fmt.Print("      ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !rs.command(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			rs.run(sql)
		}
		prompt()
	}
}

// command handles the remote shell's backslash metacommands; returns
// false to quit.
func (rs *remoteSession) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\ping":
		rs.ping()
	case "\\strategy":
		if len(fields) != 2 {
			fmt.Println("usage: \\strategy <s1|s2|s3|canonical|unnested|costbased>")
			break
		}
		if err := rs.c.SetStrategy(disqo.Strategy(fields[1])); err != nil {
			rs.report(err)
			break
		}
		fmt.Printf("session strategy set to %s\n", fields[1])
	case "\\path":
		if len(fields) != 2 {
			fmt.Println("usage: \\path <row|vector>")
			break
		}
		if err := rs.c.SetExecutionPath(fields[1]); err != nil {
			rs.report(err)
			break
		}
		fmt.Printf("session execution path set to %s\n", fields[1])
	case "\\set":
		if len(fields) != 3 || fields[1] != "nulls" {
			fmt.Println("usage: \\set nulls 2vl|3vl")
			break
		}
		m, ok := parseNulls(fields[2])
		if !ok {
			fmt.Printf("bad mode %q (want 2vl or 3vl)\n", fields[2])
			break
		}
		if err := rs.c.SetNullMode(m); err != nil {
			rs.report(err)
			break
		}
		fmt.Printf("session nulls set to %s\n", m)
	case "\\timeout":
		if len(fields) != 2 {
			fmt.Println("usage: \\timeout <duration|0>")
			break
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil && fields[1] == "0" {
			d, err = 0, nil
		}
		if err != nil {
			fmt.Printf("bad duration %q\n", fields[1])
			break
		}
		if err := rs.c.SetTimeout(d); err != nil {
			rs.report(err)
			break
		}
		fmt.Printf("session timeout set to %s\n", d)
	case "\\prepare":
		if len(fields) < 3 {
			fmt.Println("usage: \\prepare <name> <sql>")
			break
		}
		sql := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, fields[0]), " "+fields[1]))
		if err := rs.c.Prepare(fields[1], sql); err != nil {
			rs.report(err)
			break
		}
		fmt.Printf("prepared %s\n", fields[1])
	case "\\run":
		if len(fields) != 2 {
			fmt.Println("usage: \\run <name>")
			break
		}
		ctx, stop := queryContext()
		res, err := rs.c.QueryPrepared(ctx, fields[1])
		stop()
		if err != nil {
			rs.report(err)
			break
		}
		rs.last = res
		fmt.Print(res.String())
		fmt.Printf("elapsed: %s\n", res.Elapsed.Round(time.Microsecond))
	case "\\help":
		fmt.Println("\\ping                    server role, drain state, replica staleness\n\\strategy <s>            set the session's default strategy\n\\path <row|vector>       set the session's default execution path\n\\set nulls 2vl|3vl       set the session's default null semantics\n\\timeout <d>             set the session's default query timeout (0 clears)\n\\prepare <name> <sql>    register a prepared statement\n\\run <name>              execute a prepared statement\n\\q                       quit")
	default:
		fmt.Printf("unknown command %s in remote mode (try \\help)\n", fields[0])
	}
	return true
}
