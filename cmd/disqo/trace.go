package main

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"disqo/internal/physical"
)

// jsonlTracer streams operator spans as JSON lines, one object per
// open/morsel/close event, timestamped in microseconds since the trace
// started. A mutex serializes writes — morsel workers emit events
// concurrently.
type jsonlTracer struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
}

func newJSONLTracer(w io.Writer) *jsonlTracer {
	return &jsonlTracer{enc: json.NewEncoder(w), start: time.Now()}
}

func (t *jsonlTracer) emit(v any) {
	t.mu.Lock()
	t.enc.Encode(v) //nolint:errcheck // tracing is best-effort
	t.mu.Unlock()
}

func (t *jsonlTracer) us() int64 { return time.Since(t.start).Microseconds() }

func (t *jsonlTracer) OpOpen(n physical.Node) {
	t.emit(struct {
		Us int64  `json:"us"`
		Ev string `json:"ev"`
		ID int    `json:"id"`
		Op string `json:"op"`
	}{t.us(), "open", n.ID(), n.Label()})
}

func (t *jsonlTracer) OpMorsel(n physical.Node, lo, hi int) {
	t.emit(struct {
		Us int64  `json:"us"`
		Ev string `json:"ev"`
		ID int    `json:"id"`
		Lo int    `json:"lo"`
		Hi int    `json:"hi"`
	}{t.us(), "morsel", n.ID(), lo, hi})
}

// CacheEvent implements disqo.CacheObserver: cache-tier decisions
// ("hit", "miss", "bypass", …) land in the span stream alongside the
// operator events they explain. A tracing query bypasses the result
// cache entirely, so traced runs always carry a result/bypass event.
func (t *jsonlTracer) CacheEvent(tier, event string) {
	t.emit(struct {
		Us   int64  `json:"us"`
		Ev   string `json:"ev"`
		Tier string `json:"tier"`
		What string `json:"what"`
	}{t.us(), "cache", tier, event})
}

func (t *jsonlTracer) OpClose(n physical.Node, rows int64, d time.Duration) {
	t.emit(struct {
		Us   int64  `json:"us"`
		Ev   string `json:"ev"`
		ID   int    `json:"id"`
		Rows int64  `json:"rows"`
		Ns   int64  `json:"ns"`
	}{t.us(), "close", n.ID(), rows, d.Nanoseconds()})
}
