// Command bench regenerates the paper's evaluation tables (Fig. 7a/7b/7c
// and the technical-report extensions) and prints them in the paper's
// layout. Timed-out cells print "n/a", mirroring the paper's six-hour
// cutoff.
//
// Usage:
//
//	bench                         # run everything at default scale
//	bench -exp fig7a              # one experiment
//	bench -exp fig7a,fig7c        # several
//	bench -scale 0.05 -timeout 30s -strategies canonical,unnested
//	bench -repeat 3               # keep the fastest of three runs
//	bench -exp fig7a -workers 4   # run with a 4-worker morsel pool
//	bench -exp workers -workers 1,2,4   # 1-vs-N parallel speedup sweep
//	bench -exp concurrency -workers 1,2 -sessions 1,4,8   # concurrent-session sweep
//	bench -exp predicates         # row vs vectorized path on disjunctive filters
//	bench -path row               # pin every measured query to one execution path
//	bench -json .                 # also write BENCH_<exp>.json per experiment
//	bench -cpuprofile cpu.pprof   # write a pprof CPU profile
//	bench -memprofile mem.pprof   # write a pprof heap profile
//
// The -json files carry the per-cell timings plus a per-operator
// breakdown (rows, calls, seconds per physical operator) from a
// separate metrics-enabled run, so instrumentation never pollutes the
// timed measurements.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	osexec "os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"disqo"
	"disqo/internal/harness"
)

func main() {
	var (
		exps       = flag.String("exp", strings.Join(harness.Order, ","), "comma-separated experiment ids")
		scale      = flag.Float64("scale", 0.1, "multiplier applied to the paper's RST scale factors (1 = the paper's 10k/50k/100k rows)")
		tpchSFs    = flag.String("tpch", "0.01,0.02,0.05", "TPC-H scale factors for fig7b")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-cell timeout (cells over it print n/a)")
		strategies = flag.String("strategies", "", "comma-separated strategies (default: all of s1,s2,s3,canonical,unnested)")
		repeat     = flag.Int("repeat", 1, "runs per cell; the fastest is kept")
		workers    = flag.String("workers", "", "morsel-parallel worker counts: one value applies to every experiment, a comma list drives the 'workers' and 'concurrency' sweeps (default: GOMAXPROCS)")
		path       = flag.String("path", "", "execution path for every measured query: row or vector (default: engine default, vector; the 'predicates' experiment sweeps both and ignores this)")
		sessions   = flag.String("sessions", "", "concurrent session counts for the 'concurrency' sweep (default: 1,4,8)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		jsonDir    = flag.String("json", "", "write BENCH_<exp>.json with timings and per-operator breakdowns into this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("%v", err)
			}
		}()
	}

	// Ctrl-C cancels the in-flight cell rather than killing the process:
	// the cell is recorded as "abrt" (aborted, distinct from a timeout),
	// any -json output already gathered is still written, and a second
	// interrupt falls through to the default hard kill.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	if *path != "" && *path != "row" && *path != "vector" {
		fatalf("bad -path %q (want row or vector)", *path)
	}
	cfg := harness.Config{
		Ctx:         ctx,
		Timeout:     *timeout,
		RSTScale:    *scale,
		Repeat:      *repeat,
		Path:        *path,
		OpBreakdown: *jsonDir != "",
	}
	var workerList []int
	for _, s := range splitList(*workers) {
		var w int
		if _, err := fmt.Sscanf(s, "%d", &w); err != nil || w < 1 {
			fatalf("bad worker count %q", s)
		}
		workerList = append(workerList, w)
	}
	if len(workerList) == 1 {
		cfg.Workers = workerList[0]
	}
	var sessionList []int
	for _, s := range splitList(*sessions) {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 {
			fatalf("bad session count %q", s)
		}
		sessionList = append(sessionList, n)
	}
	for _, s := range splitList(*tpchSFs) {
		var sf float64
		if _, err := fmt.Sscanf(s, "%g", &sf); err != nil {
			fatalf("bad TPC-H scale factor %q", s)
		}
		cfg.TPCHSFs = append(cfg.TPCHSFs, sf)
	}
	if *strategies != "" {
		for _, s := range splitList(*strategies) {
			cfg.Strategies = append(cfg.Strategies, disqo.Strategy(s))
		}
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r\033[K%s", msg)
		}
	}

	fmt.Printf("disqo benchmark harness — RST scale ×%g (paper SF1 = %d rows here), timeout %s\n\n",
		*scale, int(10000**scale), *timeout)
	for _, id := range splitList(*exps) {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "interrupted; skipping remaining experiments\n")
			break
		}
		var tab *harness.Table
		var err error
		if id == "workers" {
			tab, err = harness.WorkerSweep(cfg, workerList, progress)
		} else if id == "concurrency" {
			tab, err = harness.ConcurrencySweep(cfg, workerList, sessionList, progress)
		} else if id == "serve" {
			tab, err = harness.ServeSweep(cfg, sessionList, progress)
		} else {
			tab, err = harness.Run(id, cfg, progress)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r\033[K")
		}
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		tab.Meta = harness.CollectMeta(gitDescribe())
		if *jsonDir != "" {
			out, err := tab.JSON()
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			// The filename comes from the table's id, not the experiment
			// id — they differ only for "predicates", whose table is named
			// "vector" after what it measures.
			outPath := filepath.Join(*jsonDir, fmt.Sprintf("BENCH_%s.json", tab.ID))
			if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
				fatalf("%s: %v", id, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
		}
		fmt.Println(tab.Format())
		if id == "workers" && len(tab.Params) > 1 {
			first := tab.Cells[disqo.Unnested][tab.Params[0]]
			last := tab.Cells[disqo.Unnested][tab.Params[len(tab.Params)-1]]
			if first.Seconds > 0 && last.Seconds > 0 {
				fmt.Printf("speedup %s vs %s: %.2fx (results verified identical)\n\n",
					tab.Params[0], tab.Params[len(tab.Params)-1], first.Seconds/last.Seconds)
			}
			continue
		}
		if sp := tab.Speedups(); len(sp) > 0 {
			best := 0.0
			for _, v := range sp {
				if v > best {
					best = v
				}
			}
			fmt.Printf("max speedup of unnested over the slowest finished baseline: %.0fx\n\n", best)
		}
	}
}

// gitDescribe identifies the measured revision for the JSON metadata
// stamp; "" when git or the checkout is unavailable.
func gitDescribe() string {
	out, err := osexec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
