// Command disqod serves a disqo database over TCP using the
// newline-delimited JSON protocol in internal/wire.
//
// Writer mode (the default) opens the database — durably when -data is
// set — and serves reads and writes. With -data, replicas can connect
// and stream the WAL.
//
// Replica mode (-replica-of addr) opens a volatile database, follows
// the writer's replication stream (snapshot bootstrap plus WAL tail),
// and serves reads only; writes fail with a read_only error. The
// replica keeps serving — at bounded staleness — while the writer is
// down, and reconnects when it returns.
//
// SIGTERM or SIGINT drains gracefully: the listener closes, idle
// sessions get a typed closed error, in-flight requests finish (bounded
// by -drain-timeout), then the engine closes — flushing the WAL — and
// the process exits 0.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disqo"
	"disqo/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":4333", "address to serve the wire protocol on")
		dataDir      = flag.String("data", "", "durable data directory (WAL + checkpoints); empty = volatile")
		replicaOf    = flag.String("replica-of", "", "writer address to follow; serves reads only")
		debugAddr    = flag.String("debug", "", "debug HTTP listener (/metrics, /statz, /debug/pprof); empty = off")
		maxConns     = flag.Int("max-conns", 256, "max concurrent client connections (<0 = unlimited)")
		maxConc      = flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = 8×GOMAXPROCS)")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "reap sessions idle this long (<0 = never)")
		frameTimeout = flag.Duration("frame-timeout", 10*time.Second, "max time one request frame may take to arrive")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "max time one response write may take")
		maxFrame     = flag.Int("max-frame", 0, "max request frame bytes (0 = 4 MiB default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		syncEvery    = flag.Int("sync-every", 0, "fsync the WAL after every nth record (0/1 = every record)")
		syncInterval = flag.Duration("sync-interval", 0, "background WAL fsync interval (0 = off)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "auto-checkpoint after every n logged records (0 = manual only)")
		nulls        = flag.String("nulls", "3vl", "default null semantics: 3vl (SQL three-valued) or 2vl (NULL comparisons are false); per-request override via the wire protocol")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("disqod: ")

	if *dataDir != "" && *replicaOf != "" {
		log.Fatal("-data and -replica-of are mutually exclusive: a replica's state comes from the writer's stream")
	}

	role := server.RoleWriter
	if *replicaOf != "" {
		role = server.RoleReplica
	}

	// The metrics hook closes over srv before Open creates the DB the
	// server needs; it only fires on scrapes, by which time srv is set.
	var srv *server.Server
	opts := []disqo.OpenOption{
		disqo.WithDrainTimeout(*drainTimeout),
	}
	switch *nulls {
	case "3vl":
	case "2vl":
		opts = append(opts, disqo.WithTwoValuedNulls())
	default:
		log.Fatalf("bad -nulls %q (want 2vl or 3vl)", *nulls)
	}
	if *maxConc != 0 {
		opts = append(opts, disqo.WithMaxConcurrent(*maxConc))
	}
	if *dataDir != "" {
		opts = append(opts,
			disqo.WithDataDir(*dataDir),
			disqo.WithSyncEvery(*syncEvery),
			disqo.WithSyncInterval(*syncInterval),
			disqo.WithCheckpointEvery(*ckptEvery),
		)
	}
	if *debugAddr != "" {
		opts = append(opts,
			disqo.WithDebugAddr(*debugAddr),
			disqo.WithDebugMetrics(func() []byte {
				if srv == nil {
					return nil
				}
				return srv.MetricsText()
			}),
		)
	}

	db, err := disqo.Open(opts...)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	if *debugAddr != "" {
		if addr, err := db.DebugAddr(); err != nil {
			log.Printf("debug listener failed: %v", err)
		} else {
			log.Printf("debug http on %s", addr)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	cfg := server.Config{
		DB:           db,
		Role:         role,
		DataDir:      *dataDir,
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		FrameTimeout: *frameTimeout,
		WriteTimeout: *writeTimeout,
		MaxFrame:     *maxFrame,
		Logf:         log.Printf,
	}

	var rep *server.Replica
	if role == server.RoleReplica {
		rep, err = server.NewReplica(server.ReplicaConfig{
			DB:     db,
			Writer: *replicaOf,
			Logf:   log.Printf,
		})
		if err != nil {
			log.Fatalf("replica: %v", err)
		}
		cfg.Staleness = rep.Staleness
	}

	srv, err = server.New(cfg)
	if err != nil {
		log.Fatalf("server: %v", err)
	}

	repDone := make(chan struct{})
	if rep != nil {
		go func() {
			defer close(repDone)
			if err := rep.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("replication stopped: %v", err)
			}
		}()
	} else {
		close(repDone)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*listen) }()

	select {
	case err := <-serveErr:
		// Bind failure or a fatal accept error before any signal.
		db.Close()
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		return
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (timeout %s)", *drainTimeout)
	stop() // a second signal kills the process the default way
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	<-serveErr
	<-repDone
	if err := db.Close(); err != nil {
		log.Printf("close: %v", err)
		os.Exit(1)
	}
	log.Print("bye")
}
