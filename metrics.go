package disqo

import (
	"fmt"
	"strings"
	"time"

	"disqo/internal/algebra"
	"disqo/internal/exec"
	"disqo/internal/physical"
)

// Tracer observes physical-operator execution: one OpOpen/OpClose span
// per operator evaluation with OpMorsel events in between. Pass an
// implementation with WithTracer; implementations must be safe for
// concurrent use (morsel workers emit events in parallel).
type Tracer = exec.Tracer

// OpMetrics is one physical operator's runtime report: the planner's
// estimate next to what execution actually did. All counters are
// worker-count independent; Wall is wall-clock and is not.
type OpMetrics struct {
	// ID is the physical node's planner-assigned ordinal.
	ID int `json:"id"`
	// Op is the operator's physical label (algorithm and arguments).
	Op string `json:"op"`
	// EstRows is the optimizer's estimated output cardinality.
	EstRows float64 `json:"est_rows"`
	// Calls counts actual evaluations; canonical nested plans pay one
	// per outer tuple, unnested plans exactly one.
	Calls int64 `json:"calls"`
	// MemoHits counts evaluations answered from the DAG/subquery memo.
	MemoHits int64 `json:"memo_hits,omitempty"`
	// RowsIn / RowsOut are total input and output tuples across calls.
	RowsIn  int64 `json:"rows_in"`
	RowsOut int64 `json:"rows_out"`
	// Morsels is how many fixed-size input chunks the operator's
	// parallel loops processed (derived from input size).
	Morsels int64 `json:"morsels,omitempty"`
	// VecCalls counts the Calls served by a vectorized kernel; the
	// remainder ran tuple-at-a-time. Zero on the row path.
	VecCalls int64 `json:"vec_calls,omitempty"`
	// HashBuildRows is the total build-side size of hash tables built.
	HashBuildRows int64 `json:"hash_build_rows,omitempty"`
	// Wall is the cumulative inclusive evaluation time.
	Wall time.Duration `json:"wall_ns"`
	// Children are the IDs of the operator's physical inputs.
	Children []int `json:"children,omitempty"`
}

// PlanMetrics is the structured per-operator report of one executed
// query — the machine-readable form of EXPLAIN ANALYZE. Ops holds every
// distinct physical node of the executed DAG in pre-order from the
// root; shared subplans appear once and are referenced by ID.
type PlanMetrics struct {
	Root int         `json:"root"`
	Ops  []OpMetrics `json:"ops"`
	// Cache reports where the result came from ("execution",
	// "result-cache", "single-flight", "bypass") and the DB-wide cache
	// counters at completion. For a served result, Root and Ops are the
	// filling execution's report — no operators ran for this call.
	Cache *CacheReport `json:"cache,omitempty"`
}

// Op returns the report entry for a node ID, or nil.
func (p *PlanMetrics) Op(id int) *OpMetrics {
	for i := range p.Ops {
		if p.Ops[i].ID == id {
			return &p.Ops[i]
		}
	}
	return nil
}

// TotalWall sums the root's wall time — the executed plan's inclusive
// evaluation time.
func (p *PlanMetrics) TotalWall() time.Duration {
	if op := p.Op(p.Root); op != nil {
		return op.Wall
	}
	return 0
}

// newPlanMetrics assembles the report from the executed physical DAG,
// any subquery plans evaluated from expressions, and the executor's
// per-node counters. Shared nodes are reported once.
func newPlanMetrics(root physical.Node, subs []physical.Node, nm []exec.NodeMetrics) *PlanMetrics {
	pm := &PlanMetrics{Root: root.ID()}
	seen := map[int]bool{}
	add := func(r physical.Node) {
		physical.Walk(r, func(n physical.Node) bool {
			if seen[n.ID()] {
				return false
			}
			seen[n.ID()] = true
			om := OpMetrics{ID: n.ID(), Op: n.Label(), EstRows: n.EstRows()}
			if n.ID() < len(nm) {
				m := nm[n.ID()]
				om.Calls = m.Calls
				om.MemoHits = m.MemoHits
				om.RowsIn = m.RowsIn
				om.RowsOut = m.RowsOut
				om.Morsels = m.Morsels
				om.VecCalls = m.VecCalls
				om.HashBuildRows = m.HashBuildRows
				om.Wall = m.Wall()
			}
			for _, c := range n.Children() {
				om.Children = append(om.Children, c.ID())
			}
			pm.Ops = append(pm.Ops, om)
			return true
		})
	}
	add(root)
	for _, s := range subs {
		add(s)
	}
	return pm
}

// collectSubplans returns every nested query block reachable through
// operator expressions, outermost first, depth-first, deduplicated.
// Unnested plans have none; canonical plans keep one per subquery, each
// re-evaluated per outer binding.
func collectSubplans(root algebra.Op) []algebra.Op {
	var subs []algebra.Op
	seen := map[algebra.Op]bool{}
	var visit func(op algebra.Op)
	visit = func(op algebra.Op) {
		algebra.Walk(op, func(o algebra.Op) bool {
			for _, e := range algebra.Exprs(o) {
				for _, sp := range algebra.Subplans(e) {
					if !seen[sp] {
						seen[sp] = true
						subs = append(subs, sp)
						visit(sp)
					}
				}
			}
			return true
		})
	}
	visit(root)
	return subs
}

// analyzeAnnot renders one node's estimated-vs-actual annotation for
// EXPLAIN ANALYZE. Every printed counter is worker-count independent;
// only the trailing time= field is wall-clock (tests mask it).
func analyzeAnnot(nm []exec.NodeMetrics) func(physical.Node) string {
	return func(n physical.Node) string {
		var m exec.NodeMetrics
		if n.ID() < len(nm) {
			m = nm[n.ID()]
		}
		if m.Calls == 0 && m.MemoHits == 0 {
			return fmt.Sprintf("(est %.0f rows, never executed)", n.EstRows())
		}
		if m.Calls == 0 {
			// Every evaluation was answered from the memo; the rows came
			// from the defining occurrence above.
			return fmt.Sprintf("(est %.0f rows, memo=%d)", n.EstRows(), m.MemoHits)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "(est %.0f → actual %d rows, calls=%d", n.EstRows(), m.RowsOut, m.Calls)
		if m.MemoHits > 0 {
			fmt.Fprintf(&b, ", memo=%d", m.MemoHits)
		}
		if m.HashBuildRows > 0 {
			fmt.Fprintf(&b, ", build=%d", m.HashBuildRows)
		}
		if m.Morsels > 0 {
			fmt.Fprintf(&b, ", morsels=%d", m.Morsels)
		}
		if m.VecCalls > 0 {
			b.WriteString(", path=vector")
		} else {
			b.WriteString(", path=row")
		}
		fmt.Fprintf(&b, ", time=%s)", m.Wall().Round(time.Microsecond))
		return b.String()
	}
}
