package disqo

// Cache suite for the three-tier caching subsystem (internal/cache plus
// the DB wiring in dbcache.go): warm result-cache hits must be
// byte-identical to fresh executions, DML/DDL must invalidate dependent
// entries before the writing Exec returns, single-flight must collapse
// concurrent identical cold queries into one execution, eviction must
// respect the configured byte capacities and the shared tuple budget,
// and a cache-disabled DB must produce byte-identical results. Internal
// (package disqo) to reach gateDB/chaosDB and the unexported
// withFaultInjector hook.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"disqo/internal/testutil"
)

// TestWarmHitByteIdentical runs every golden shape cold then warm: the
// second run must be a result-cache hit and identical in rows, columns,
// execution counters, and rewrite trace.
func TestWarmHitByteIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, plan := range chaosPlans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			db := chaosDB(t, 64, plan.highA4)
			cold, err := db.Query(plan.sql, WithStrategy(plan.strategy))
			if err != nil {
				t.Fatal(err)
			}
			before := db.CacheStats()
			warm, err := db.Query(plan.sql, WithStrategy(plan.strategy))
			if err != nil {
				t.Fatal(err)
			}
			after := db.CacheStats()
			if after.Result.Hits != before.Result.Hits+1 {
				t.Fatalf("warm run was not a result-cache hit: %+v -> %+v", before.Result, after.Result)
			}
			if got, want := rowsFingerprint(warm), rowsFingerprint(cold); got != want {
				t.Fatalf("warm hit differs from cold run:\n--- warm ---\n%s--- cold ---\n%s", got, want)
			}
			if got, want := strings.Join(warm.Columns, ","), strings.Join(cold.Columns, ","); got != want {
				t.Fatalf("warm columns %q != cold columns %q", got, want)
			}
			if warm.Stats != cold.Stats {
				t.Fatalf("warm Stats %+v != cold Stats %+v", warm.Stats, cold.Stats)
			}
			if got, want := strings.Join(warm.Rewrites, ";"), strings.Join(cold.Rewrites, ";"); got != want {
				t.Fatalf("warm rewrites %q != cold rewrites %q", got, want)
			}
		})
	}
}

// TestWarmHitAcrossWhitespace: a reformatted statement normalizes to
// the same plan-cache key and fingerprints to the same physical plan,
// so it hits both tiers.
func TestWarmHitAcrossWhitespace(t *testing.T) {
	db := chaosDB(t, 48, false)
	cold, err := db.Query(chaosQ1)
	if err != nil {
		t.Fatal(err)
	}
	reformatted := strings.Join(strings.Fields(chaosQ1), " ") + "   "
	before := db.CacheStats()
	warm, err := db.Query(reformatted)
	if err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Plan.Hits != before.Plan.Hits+1 {
		t.Fatal("reformatted statement missed the plan cache")
	}
	if after.Result.Hits != before.Result.Hits+1 {
		t.Fatal("reformatted statement missed the result cache")
	}
	if rowsFingerprint(warm) != rowsFingerprint(cold) {
		t.Fatal("reformatted statement returned different rows")
	}
}

// TestStrategiesDoNotShareResults: S1 and Canonical optimize to the
// same logical plan, but their executions count work differently, so a
// result cached under one strategy must not be served to the other.
func TestStrategiesDoNotShareResults(t *testing.T) {
	db := chaosDB(t, 48, false)
	canon, err := db.Query(chaosQ1, WithStrategy(Canonical))
	if err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	s1, err := db.Query(chaosQ1, WithStrategy(S1))
	if err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Result.Hits != before.Result.Hits {
		t.Fatal("S1 run was served the canonical strategy's cached result")
	}
	if rowsFingerprint(s1) != rowsFingerprint(canon) {
		t.Fatal("strategies disagree on rows")
	}
	if s1.Stats == canon.Stats {
		t.Fatal("S1 and canonical report identical Stats; the strategies no longer differ and the separate cache keys are untestable")
	}
}

// TestCacheDisabledByteIdentical: a WithoutCache DB must answer every
// golden shape byte-identically to a cached DB (cold and warm), and its
// counters must stay zero.
func TestCacheDisabledByteIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, plan := range chaosPlans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			cached := chaosDB(t, 48, plan.highA4)
			plain := chaosDBWith(t, 48, plan.highA4, WithoutCache())
			var prints []string
			for _, db := range []*DB{cached, cached, plain, plain} {
				res, err := db.Query(plan.sql, WithStrategy(plan.strategy))
				if err != nil {
					t.Fatal(err)
				}
				prints = append(prints, rowsFingerprint(res))
			}
			for i, p := range prints[1:] {
				if p != prints[0] {
					t.Fatalf("run %d differs from run 0:\n%s\nvs\n%s", i+1, p, prints[0])
				}
			}
			if cs := plain.CacheStats(); cs != (CacheStats{}) {
				t.Fatalf("WithoutCache DB recorded cache activity: %+v", cs)
			}
		})
	}
}

// TestDMLInvalidatesBeforeExecReturns: a committed write drops every
// cached result referencing the written table before Exec returns, and
// entries on untouched tables survive.
func TestDMLInvalidatesBeforeExecReturns(t *testing.T) {
	db := chaosDB(t, 48, false)
	if _, err := db.Query(chaosQ1); err != nil { // references r and s
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT DISTINCT * FROM t`); err != nil {
		t.Fatal(err)
	}
	if cs := db.CacheStats(); cs.Result.Entries != 2 {
		t.Fatalf("expected 2 resident entries, have %+v", cs.Result)
	}

	mirror := chaosDB(t, 48, false)
	for _, stmt := range []string{
		`UPDATE r SET a4 = 0 WHERE a3 = 1`,
		`INSERT INTO s VALUES (999, 3, 1, 2000)`,
		`DELETE FROM r WHERE a3 = 2`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		// The write's dependents are gone the moment Exec returns; the
		// t-only entry is untouched.
		cs := db.CacheStats()
		if cs.Result.Entries != 1 {
			t.Fatalf("after %q: %d entries resident, want only the t scan", stmt, cs.Result.Entries)
		}
		if _, err := mirror.Exec(stmt); err != nil {
			t.Fatal(err)
		}
		got, err := db.Query(chaosQ1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mirror.Query(chaosQ1)
		if err != nil {
			t.Fatal(err)
		}
		if rowsFingerprint(got) != rowsFingerprint(want) {
			t.Fatalf("after %q the cached DB diverged from the mirror", stmt)
		}
		// That re-execution refilled the cache for the next iteration.
	}
	if cs := db.CacheStats(); cs.Result.Invalidations < 3 {
		t.Fatalf("invalidations = %d, want at least one per write", cs.Result.Invalidations)
	}
	// The untouched-table entry still hits.
	before := db.CacheStats()
	if _, err := db.Query(`SELECT DISTINCT * FROM t`); err != nil {
		t.Fatal(err)
	}
	if after := db.CacheStats(); after.Result.Hits != before.Result.Hits+1 {
		t.Fatal("entry on an unwritten table was lost to invalidation")
	}
}

// TestViewRedefinitionInvalidatesPlans: view DDL bumps no catalog
// version (it writes no table), so the plan cache must key on the view
// epoch — a redefined view must change the answer immediately.
func TestViewRedefinitionInvalidatesPlans(t *testing.T) {
	db := gateDB(t, 8)
	if _, err := db.Exec(`CREATE VIEW kv AS SELECT DISTINCT * FROM k`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT DISTINCT * FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("view query returned %d rows, want 8", len(res.Rows))
	}
	if _, err := db.Exec(`DROP VIEW kv`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW kv AS SELECT DISTINCT * FROM k WHERE w = 0`); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`SELECT DISTINCT * FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 8 {
		t.Fatal("query through the redefined view served the stale plan's answer")
	}
}

// TestResultCacheEvictionPressure: distinct results under a tight byte
// capacity evict LRU-first; residency stays within the cap and recent
// entries survive while the oldest are gone.
func TestResultCacheEvictionPressure(t *testing.T) {
	const capBytes = 1200
	db := gateDB(t, 8, WithResultCacheSize(capBytes))
	query := func(v int) string {
		return fmt.Sprintf(`SELECT DISTINCT * FROM k WHERE v = %d`, v)
	}
	const n = 6
	for v := 0; v < n; v++ {
		if _, err := db.Query(query(v)); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.CacheStats()
	if cs.Result.Bytes > capBytes {
		t.Fatalf("resident bytes %d exceed the %d cap", cs.Result.Bytes, capBytes)
	}
	if cs.Result.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", cs.Result)
	}
	if cs.Result.Entries == 0 || cs.Result.Entries >= n {
		t.Fatalf("entries = %d, want within (0, %d)", cs.Result.Entries, n)
	}
	// The most recent query is resident; the oldest was evicted.
	before := db.CacheStats()
	if _, err := db.Query(query(n - 1)); err != nil {
		t.Fatal(err)
	}
	mid := db.CacheStats()
	if mid.Result.Hits != before.Result.Hits+1 {
		t.Fatal("most recent entry was evicted before older ones")
	}
	if _, err := db.Query(query(0)); err != nil {
		t.Fatal(err)
	}
	if after := db.CacheStats(); after.Result.Hits != mid.Result.Hits {
		t.Fatal("oldest entry survived LRU pressure")
	}
}

// TestPlanCacheEvictionPressure mirrors the result-tier test for the
// plan tier.
func TestPlanCacheEvictionPressure(t *testing.T) {
	db := gateDB(t, 4, WithPlanCacheSize(4096), WithResultCacheSize(-1))
	for v := 0; v < 8; v++ {
		sql := fmt.Sprintf(`SELECT DISTINCT * FROM k WHERE v = %d`, v)
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.CacheStats()
	if cs.Plan.Hits == 0 {
		t.Fatalf("repeated statements never hit the plan cache: %+v", cs.Plan)
	}
	if cs.Plan.Bytes > 4096 {
		t.Fatalf("plan cache holds %d bytes over its 4096 cap", cs.Plan.Bytes)
	}
	if cs.Plan.Evictions == 0 {
		t.Fatalf("no plan evictions under pressure: %+v", cs.Plan)
	}
	if cs.Result != (CacheTierStats{}) {
		t.Fatalf("disabled result tier recorded activity: %+v", cs.Result)
	}
}

// TestCachedTuplesChargeSharedBudget: cached rows are pinned against
// the WithSharedTupleLimit pool and released when invalidation drops
// the entry.
func TestCachedTuplesChargeSharedBudget(t *testing.T) {
	const rows = 50
	db := gateDB(t, rows, WithSharedTupleLimit(10000))
	if _, err := db.Query(gateQuery, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if got := db.budget.Resident(); got != rows {
		t.Fatalf("budget holds %d tuples after the fill, want the %d cached rows", got, rows)
	}
	if _, err := db.Exec(`DELETE FROM k WHERE v = 0`); err != nil {
		t.Fatal(err)
	}
	if got := db.budget.Resident(); got != 0 {
		t.Fatalf("budget still holds %d tuples after invalidation dropped the entry", got)
	}
	if _, err := db.Query(gateQuery, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if got := db.budget.Resident(); got != rows-1 {
		t.Fatalf("budget holds %d tuples after refill, want %d", got, rows-1)
	}
}

// TestSingleFlightCollapse is the acceptance criterion: of 8 concurrent
// identical cold queries exactly one executes; the rest are served the
// owner's result. Asserted through each result's metrics (the root
// operator ran exactly once; only one result's source is "execution")
// and the DB counters (hits + single-flight waits account for the other
// seven).
func TestSingleFlightCollapse(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := chaosDB(t, 96, false)
	const n = 8
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []*Result
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := db.Query(chaosQ1, WithStrategy(Canonical), WithMetrics())
			if err != nil {
				t.Errorf("concurrent query: %v", err)
				return
			}
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(results) != n {
		t.Fatalf("%d of %d queries returned", len(results), n)
	}
	executions := 0
	for _, res := range results {
		pm := res.Metrics()
		if pm == nil || pm.Cache == nil {
			t.Fatal("metrics query returned no cache report")
		}
		switch pm.Cache.Source {
		case "execution":
			executions++
		case "result-cache", "single-flight":
		default:
			t.Fatalf("unexpected cache source %q", pm.Cache.Source)
		}
		if root := pm.Op(pm.Root); root == nil || root.Calls != 1 {
			t.Fatalf("root operator report %+v, want exactly one call", root)
		}
		if rowsFingerprint(res) != rowsFingerprint(results[0]) {
			t.Fatal("concurrent identical queries disagree on rows")
		}
	}
	if executions != 1 {
		t.Fatalf("%d of %d concurrent identical queries executed, want exactly 1", executions, n)
	}
	if cs := db.CacheStats(); cs.Result.Hits+cs.Result.Waits != n-1 {
		t.Fatalf("hits(%d) + waits(%d) != %d served queries",
			cs.Result.Hits, cs.Result.Waits, n-1)
	}
}

// TestWarmHitLatency is the acceptance criterion for hit speed: a warm
// result-cache hit on a golden shape must be at least 10× faster than a
// fresh execution. The canonical strategy's quadratic re-evaluation
// makes cold runs comfortably slow at 256 rows; both sides take the
// fastest of several runs to shed scheduler noise.
func TestWarmHitLatency(t *testing.T) {
	cached := chaosDB(t, 256, false)
	plain := chaosDBWith(t, 256, false, WithoutCache())

	if _, err := cached.Query(chaosQ1, WithStrategy(Canonical)); err != nil {
		t.Fatal(err)
	}
	best := func(db *DB, runs int) time.Duration {
		min := time.Duration(1<<62 - 1)
		for i := 0; i < runs; i++ {
			begin := time.Now()
			if _, err := db.Query(chaosQ1, WithStrategy(Canonical)); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(begin); d < min {
				min = d
			}
		}
		return min
	}
	cold := best(plain, 3)
	warm := best(cached, 10)
	if cs := cached.CacheStats(); cs.Result.Hits < 10 {
		t.Fatalf("warm runs were not hits: %+v", cs.Result)
	}
	if warm*10 > cold {
		t.Fatalf("warm hit %v is not 10x faster than cold execution %v", warm, cold)
	}
}
