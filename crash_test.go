// Crash-recovery chaos suite. A child copy of this test binary runs a
// deterministic churn script against a durable DB and SIGKILLs itself
// at one exact WAL/snapshot fault-site visit (ModeKill — no deferred
// cleanup, like a power cut). The parent reopens the directory and
// asserts the recovered state's fingerprint is sequentially legal: it
// must equal the state after some prefix of the churn script, never a
// torn half-statement and never a reordering. A second sweep truncates
// the log at random byte offsets in-process, which must always recover
// to a legal prefix too (the torn-final-record rule), while flipping a
// byte mid-log must fail with a typed *RecoveryError.
package disqo

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"disqo/internal/faultinject"
	"disqo/internal/wal"
)

// churnOps is the scripted write workload: every WAL record kind is
// exercised (SQL DML/DDL, binary inserts, view DDL, the seeded
// loaders), in a fixed order so the state after op i is a function of
// i alone.
func churnOps() []func(db *DB) error {
	var ops []func(db *DB) error
	run := func(sql string) {
		ops = append(ops, func(db *DB) error { _, err := db.Exec(sql); return err })
	}
	run("CREATE TABLE u (a INTEGER, b VARCHAR, c DOUBLE)")
	ops = append(ops, func(db *DB) error {
		return db.CreateTable("w", []Column{{Name: "x", Type: TypeInt}, {Name: "y", Type: TypeBool}})
	})
	for i := 0; i < 10; i++ {
		run(fmt.Sprintf("INSERT INTO u VALUES (%d, 's%d', %g)", i, i%3, float64(i)*1.25))
	}
	ops = append(ops, func(db *DB) error {
		// Binary-logged rows: NULLs and an exact float SQL text would mangle.
		return db.Insert("w", []Value{Int(1), Bool(true)}, []Value{Null(), Bool(false)}, []Value{Int(3), Null()})
	})
	ops = append(ops, func(db *DB) error { return db.LoadRST(0.002, 0.002, 0.002) })
	run("CREATE VIEW v1 AS SELECT DISTINCT * FROM u WHERE a > 3")
	for i := 0; i < 8; i++ {
		run(fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d, %d)", 100+i, i%8, i, (i*37)%2000))
	}
	run("DELETE FROM u WHERE a = 2")
	run("UPDATE u SET b = 'zz', c = c + 0.5 WHERE a > 7")
	for i := 0; i < 8; i++ {
		run(fmt.Sprintf("INSERT INTO s VALUES (%d, %d, %d, %d)", 200+i, i%8, i%3, (i*53)%3000))
	}
	run("DROP VIEW v1")
	run("CREATE VIEW v2 AS SELECT DISTINCT * FROM w WHERE x = 1")
	run("DROP TABLE t")
	for i := 0; i < 6; i++ {
		run(fmt.Sprintf("DELETE FROM s WHERE b1 = %d", 200+i))
	}
	run("UPDATE r SET a4 = a4 + 1 WHERE a2 = 3")
	for i := 0; i < 6; i++ {
		ops = append(ops, func(db *DB) error {
			return db.Insert("u", []Value{Int(50), String("tail"), Float(0.1)})
		})
	}
	run("CREATE TABLE last (k INTEGER)")
	run("INSERT INTO last VALUES (1), (2), (3)")
	return ops
}

// legalChurnFingerprints replays the churn in a volatile DB and records
// the fingerprint after every prefix — the full set of states a crash
// at any moment may legally recover to.
func legalChurnFingerprints(t *testing.T) map[uint64]int {
	t.Helper()
	db, _ := Open()
	defer db.Close()
	legal := map[uint64]int{db.StateFingerprint(): 0}
	for i, op := range churnOps() {
		if err := op(db); err != nil {
			t.Fatalf("churn op %d: %v", i, err)
		}
		legal[db.StateFingerprint()] = i + 1
	}
	return legal
}

// churnCheckpointEvery matches the child's WithCheckpointEvery so the
// kill sweep crosses several full checkpoint cycles.
const churnCheckpointEvery = 17

// TestCrashChaosChild is the child half of the kill sweep: it only runs
// when the parent passes a crash plan through the environment, arms a
// ModeKill fault at one (site, nth) disk visit, and churns until the
// kill lands (or the script completes, which tells the parent the sweep
// walked past the last visit).
func TestCrashChaosChild(t *testing.T) {
	dir := os.Getenv("DISQO_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-chaos child; driven by TestCrashChaosKillSweep")
	}
	site, ok := faultinject.ParseSite(os.Getenv("DISQO_CRASH_SITE"))
	if !ok {
		t.Fatalf("bad DISQO_CRASH_SITE %q", os.Getenv("DISQO_CRASH_SITE"))
	}
	nth, err := strconv.ParseInt(os.Getenv("DISQO_CRASH_NTH"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New()
	in.ArmMode(site, -1, nth, faultinject.ModeKill)
	db, err := Open(WithDataDir(dir), WithCheckpointEvery(churnCheckpointEvery), withWALFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range churnOps() {
		if err := op(db); err != nil {
			t.Fatalf("churn op %d: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// spawnCrashChild re-runs this test binary as TestCrashChaosChild with
// the given crash plan; it reports whether the child was killed (vs.
// finishing the script cleanly).
func spawnCrashChild(t *testing.T, dir string, site faultinject.Site, nth int64) bool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestCrashChaosChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"DISQO_CRASH_DIR="+dir,
		"DISQO_CRASH_SITE="+site.String(),
		"DISQO_CRASH_NTH="+strconv.FormatInt(nth, 10),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return false // clean exit: the armed visit was never reached
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != -1 {
		// Anything but death-by-signal is a child test failure, not a kill.
		t.Fatalf("child %s@%d failed instead of dying: %v\n%s", site, nth, err, out)
	}
	return true
}

// assertLegalRecovery reopens a crashed directory and checks the
// recovered state is the state after some prefix of the churn script.
func assertLegalRecovery(t *testing.T, dir string, legal map[uint64]int, label string) int {
	t.Helper()
	db, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer db.Close()
	fp := db.StateFingerprint()
	n, ok := legal[fp]
	if !ok {
		t.Fatalf("%s: recovered fingerprint %016x matches no churn prefix", label, fp)
	}
	return n
}

// TestCrashChaosKillSweep SIGKILLs a child at every reachable visit of
// every durability fault site — each WAL append, each fsync, and all
// three phases of every checkpoint — and asserts every recovered state
// is prefix-legal. -short strides the append/sync sweeps; the full walk
// runs in verify.sh.
func TestCrashChaosKillSweep(t *testing.T) {
	if testing.Short() && os.Getenv("DISQO_CRASH_FULL") == "" {
		t.Log("short mode: striding kill offsets")
	}
	legal := legalChurnFingerprints(t)
	type sweep struct {
		site   faultinject.Site
		stride int64
	}
	sweeps := []sweep{
		{faultinject.SiteWALAppend, 1},
		{faultinject.SiteWALSync, 1},
		{faultinject.SiteSnapshot, 1},
	}
	if testing.Short() {
		sweeps[0].stride, sweeps[1].stride = 7, 7
	}
	for _, sw := range sweeps {
		killed, maxPrefix := 0, 0
		for nth := int64(1); nth < 1000; nth += sw.stride {
			dir := t.TempDir()
			if !spawnCrashChild(t, dir, sw.site, nth) {
				break // walked past the last visit of this site
			}
			killed++
			label := fmt.Sprintf("%s@%d", sw.site, nth)
			if n := assertLegalRecovery(t, dir, legal, label); n > maxPrefix {
				maxPrefix = n
			}
		}
		if killed == 0 {
			t.Fatalf("site %s: no kill ever fired", sw.site)
		}
		t.Logf("site %s: %d kills, deepest legal prefix %d/%d ops", sw.site, killed, maxPrefix, len(legal)-1)
	}
}

// buildChurnDir runs the full churn durably (no kill, optional
// checkpointing) and returns the data directory.
func buildChurnDir(t *testing.T, checkpointEvery int) string {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(WithDataDir(dir), WithCheckpointEvery(checkpointEvery))
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range churnOps() {
		if err := op(db); err != nil {
			t.Fatalf("churn op %d: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCrashChaosRandomTruncation cuts the churn log at ≥64 deterministic
// pseudo-random byte offsets — mid-frame, mid-header, on boundaries —
// and requires every cut to recover to a legal prefix: a torn final
// record is silently dropped, never misread.
func TestCrashChaosRandomTruncation(t *testing.T) {
	legal := legalChurnFingerprints(t)
	src := buildChurnDir(t, 0) // no checkpoints: the log carries the whole history
	logBytes, err := os.ReadFile(filepath.Join(src, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logBytes) < 1000 {
		t.Fatalf("churn log suspiciously small: %d bytes", len(logBytes))
	}
	const cuts = 72
	rng := uint64(0x9e3779b97f4a7c15)
	seen := 0
	for i := 0; i < cuts; i++ {
		// splitmix64 steps keep the offsets deterministic across runs.
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		off := int((z ^ (z >> 31)) % uint64(len(logBytes)))
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), logBytes[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		n := assertLegalRecovery(t, dir, legal, fmt.Sprintf("cut@%d", off))
		seen++
		_ = n
	}
	if seen < 64 {
		t.Fatalf("only %d cuts exercised", seen)
	}
	// The untouched directory recovers the complete script.
	if n := assertLegalRecovery(t, src, legal, "full"); n != len(legal)-1 {
		t.Fatalf("full log recovered prefix %d, want %d", n, len(legal)-1)
	}
}

// TestCrashChaosMidLogCorruption flips one byte in an early frame: the
// damage is not a crash artifact (well-formed frames follow it), so
// Open must fail closed with a typed *RecoveryError, not silently drop
// committed history.
func TestCrashChaosMidLogCorruption(t *testing.T) {
	src := buildChurnDir(t, 0)
	logPath := filepath.Join(src, "wal.log")
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte{}, logBytes...)
	corrupt[len(corrupt)/3] ^= 0x20
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(WithDataDir(dir))
	if err == nil {
		db.Close()
		t.Fatal("mid-log corruption recovered silently")
	}
	var re *RecoveryError
	if !errors.As(err, &re) {
		t.Fatalf("want *RecoveryError, got %T: %v", err, err)
	}
}

// TestCrashChaosTornTailIdempotent checks recovery repairs the file in
// place: after one recovery of a torn log, a second open replays the
// same state with nothing left to truncate.
func TestCrashChaosTornTailIdempotent(t *testing.T) {
	legal := legalChurnFingerprints(t)
	src := buildChurnDir(t, 0)
	logPath := filepath.Join(src, "wal.log")
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), logBytes[:len(logBytes)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	first := assertLegalRecovery(t, dir, legal, "torn-1")
	second := assertLegalRecovery(t, dir, legal, "torn-2")
	if first != second {
		t.Fatalf("recovery not idempotent: prefix %d then %d", first, second)
	}
	recs, _, torn, err := wal.Scan(mustRead(t, filepath.Join(dir, "wal.log")))
	if err != nil || torn {
		t.Fatalf("repaired log still dirty: torn=%v err=%v", torn, err)
	}
	if len(recs) == 0 {
		t.Fatal("repaired log is empty")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWALSealedAfterInjectedFailure drives the seal satellite through
// the public API: an injected append failure reports the statement as
// unlogged, later writes are rejected with ErrWALSealed, reads keep
// working, and a reopen recovers the durable prefix.
func TestWALSealedAfterInjectedFailure(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New()
	in.ArmMode(faultinject.SiteWALAppend, -1, 3, faultinject.ModeError)
	db, err := Open(WithDataDir(dir), withWALFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE q (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO q VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec("INSERT INTO q VALUES (2)") // third append: injected failure
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected append failure, got %v", err)
	}
	if _, err := db.Exec("INSERT INTO q VALUES (3)"); !errors.Is(err, ErrWALSealed) {
		t.Fatalf("want ErrWALSealed after seal, got %v", err)
	}
	// Reads still serve the in-memory state (rows 1 and 2 both applied).
	res, err := db.Query("SELECT DISTINCT * FROM q")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("read after seal: rows=%v err=%v", len(res.Rows), err)
	}
	st, _ := db.WALStats()
	if !st.Sealed {
		t.Fatal("stats do not report the seal")
	}
	db.Close()

	// Restart: only the logged prefix (create + first insert) survives.
	db2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err = db2.Query("SELECT DISTINCT * FROM q")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("recovered rows=%d err=%v, want the 1 durable row", len(res.Rows), err)
	}
}
