package disqo

import (
	"errors"
	"fmt"
	"strings"

	"disqo/internal/sqlparser"
	"disqo/internal/wal"
)

// This file is the engine half of read replication (DESIGN.md §14). A
// replica is an ordinary *volatile* DB — WithDataDir unset, so nothing
// it applies is re-logged — that a transport feeds with the writer's
// checkpoint snapshots and WAL records, in LSN order. The engine does
// not own the transport (internal/server does); it owns the two
// invariants that make replica state trustworthy:
//
//   - Snapshot installs are atomic: one writeMu critical section swaps
//     in the whole catalog and view set, so a concurrent read pins
//     either the old state or the new, never a mix.
//   - Record application is gap-free: records replay through the same
//     applyRecord path crash recovery uses (pre-image version guard
//     included), and an LSN that is neither a duplicate nor exactly
//     next fails with ErrReplicaGap so the transport re-syncs from a
//     snapshot instead of silently diverging.

// ErrReplicaGap is returned by ReplicaApplyRecord when a record's LSN
// is not contiguous with the replica's applied position — records were
// lost in transit, or the writer truncated its log past us. The replica
// must re-sync from a snapshot; applying anything after a gap would
// build a state no sequential execution ever produced.
var ErrReplicaGap = errors.New("disqo: replication gap")

// ReplicaState reports a replica's apply position; see DB.ReplicaState.
type ReplicaState struct {
	// AppliedLSN is the last WAL record applied (0 before any record; a
	// snapshot install moves it to the snapshot's covered LSN).
	AppliedLSN uint64
	// Snapshots and Records count successful applies since Open.
	Snapshots uint64
	Records   uint64
}

// replicaGuard rejects replica applies on a durable DB: a DB that logs
// its own writes cannot also mirror someone else's log — the two
// histories would interleave in the WAL and recovery would replay a
// sequence no one executed.
func (db *DB) replicaGuard() error {
	if db.wal != nil {
		return errors.New("disqo: replica apply requires a volatile database (WithDataDir unset)")
	}
	return nil
}

// ReplicaApplySnapshot installs a writer checkpoint snapshot (the raw
// bytes of a snapshot file, as produced by Checkpoint and shipped by
// the replication stream) as this database's entire state, replacing
// every table and view. It returns the LSN the snapshot covers; later
// ReplicaApplyRecord calls must continue from exactly that position.
// Concurrent queries are safe: each pins either the pre- or
// post-snapshot catalog.
func (db *DB) ReplicaApplySnapshot(data []byte) (uint64, error) {
	if err := db.replicaGuard(); err != nil {
		return 0, err
	}
	if err := db.begin(); err != nil {
		return 0, err
	}
	defer db.end()
	st, lsn, err := wal.DecodeSnapshot(data)
	if err != nil {
		return 0, fmt.Errorf("disqo: replica snapshot: %w", err)
	}
	// Parse views before taking any lock: a malformed definition must
	// reject the whole snapshot, not leave a half-installed state.
	type viewDef struct{ name, sql string }
	views := make(map[string]*sqlparser.SelectStmt, len(st.Views))
	viewSQL := make([]viewDef, 0, len(st.Views))
	for _, v := range st.Views {
		stmt, err := sqlparser.ParseStatement(v.SQL)
		if err != nil {
			return 0, fmt.Errorf("disqo: replica snapshot view %q does not parse: %v", v.Name, err)
		}
		cv, ok := stmt.(*sqlparser.CreateViewStmt)
		if !ok {
			return 0, fmt.Errorf("disqo: replica snapshot view %q is not a CREATE VIEW", v.Name)
		}
		views[strings.ToLower(v.Name)] = cv.Body
		viewSQL = append(viewSQL, viewDef{name: strings.ToLower(v.Name), sql: v.SQL})
	}

	db.replicaMu.Lock()
	defer db.replicaMu.Unlock()
	db.writeMu.Lock()
	db.cat.Restore(st.Tables, st.CatalogVersion)
	db.viewMu.Lock()
	db.views = views
	vsql := make(map[string]string, len(viewSQL))
	for _, v := range viewSQL {
		vsql[v.name] = v.sql
	}
	db.viewSQL = vsql
	db.viewMu.Unlock()
	// Restore bumped the catalog version wholesale, which already
	// invalidates version-keyed cache entries; the view epoch bump
	// covers plans translated through dropped-or-redefined views.
	db.viewEpoch.Add(1)
	db.writeMu.Unlock()

	db.replicaLSN = lsn
	db.replicaSnaps++
	return lsn, nil
}

// ReplicaApplyRecord applies one WAL record shipped from the writer.
// Records must arrive in LSN order: a duplicate (LSN at or below the
// applied position — retransmits after a reconnect) is skipped without
// error, the next LSN is applied through the same replay path crash
// recovery uses, and anything else fails with ErrReplicaGap. On a gap
// the replica's state is untouched; the transport should re-sync from
// a snapshot.
func (db *DB) ReplicaApplyRecord(rec wal.Record) error {
	if err := db.replicaGuard(); err != nil {
		return err
	}
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.replicaMu.Lock()
	defer db.replicaMu.Unlock()
	switch {
	case rec.LSN <= db.replicaLSN:
		return nil
	case rec.LSN != db.replicaLSN+1:
		return fmt.Errorf("%w: applied through LSN %d, record is %d", ErrReplicaGap, db.replicaLSN, rec.LSN)
	}
	// applyRecord routes through the ordinary write path (Exec and
	// friends take writeMu themselves), so it must NOT be called with
	// writeMu held; replicaMu alone serializes appliers.
	if err := db.applyRecord(rec); err != nil {
		return err
	}
	db.replicaLSN = rec.LSN
	db.replicaRecs++
	return nil
}

// ReplicaState returns the replica's apply position. On a DB that has
// never applied replication frames it is all zeros.
func (db *DB) ReplicaState() ReplicaState {
	db.replicaMu.Lock()
	defer db.replicaMu.Unlock()
	return ReplicaState{AppliedLSN: db.replicaLSN, Snapshots: db.replicaSnaps, Records: db.replicaRecs}
}
