// Package disqo is an in-memory relational query engine built to
// reproduce "Unnesting Scalar SQL Queries in the Presence of Disjunction"
// (Brantner, May, Moerkotte — ICDE 2007). It parses a SQL dialect
// covering the paper's query classes, translates it into a relational
// algebra extended with bypass operators, unnests nested query blocks —
// including the disjunctive linking and disjunctive correlation cases no
// classical technique handles — and executes the resulting DAG-shaped
// plans.
//
// Quick start:
//
//	db, _ := disqo.Open()
//	if err := db.LoadRST(1, 1, 1); err != nil { ... }
//	res, err := db.Query(`SELECT DISTINCT * FROM r
//	    WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
//	       OR a4 > 1500`)
//
// Query strategies (see DESIGN.md §4 for how the baselines model the
// paper's anonymized commercial systems):
//
//	Unnested   — the paper's full strategy (Equivalences 1–5, default)
//	Canonical  — nested-loop evaluation of the canonical plan
//	S1         — canonical without any caching (slowest baseline)
//	S2         — OR-expansion + conjunctive unnesting only
//	S3         — canonical with rank-ordered predicate short-circuiting
//	CostBased  — estimate canonical vs. reordered vs. unnested, run the cheapest
package disqo

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disqo/internal/algebra"
	"disqo/internal/cache"
	"disqo/internal/catalog"
	"disqo/internal/datagen"
	"disqo/internal/exec"
	"disqo/internal/faultinject"
	"disqo/internal/physical"
	"disqo/internal/rewrite"
	"disqo/internal/sqlparser"
	"disqo/internal/stats"
	"disqo/internal/telemetry"
	"disqo/internal/translate"
	"disqo/internal/types"
	"disqo/internal/wal"
)

// Value is a SQL scalar value.
type Value = types.Value

// Column defines one table column.
type Column = catalog.Column

// Re-exported column types.
const (
	TypeInt    = types.KindInt
	TypeFloat  = types.KindFloat
	TypeString = types.KindString
	TypeBool   = types.KindBool
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = types.NewInt
	// Float builds a float value.
	Float = types.NewFloat
	// String builds a string value.
	String = types.NewString
	// Bool builds a boolean value.
	Bool = types.NewBool
	// Null builds the SQL NULL.
	Null = types.Null
)

// NullMode selects the logic predicates evaluate under. The default
// ThreeValuedNulls is SQL's Kleene logic (NULL comparisons yield
// UNKNOWN); TwoValuedNulls follows "Handling SQL Nulls with Two-Valued
// Logic" (arXiv 2012.13198): every predicate over a NULL is simply
// FALSE and the connectives are classical Boolean. Select the mode
// DB-wide with WithTwoValuedNulls or per query with WithNullMode.
type NullMode = types.NullMode

const (
	// ThreeValuedNulls is SQL's standard three-valued logic (default).
	ThreeValuedNulls = types.ThreeValued
	// TwoValuedNulls collapses UNKNOWN to FALSE at predicate leaves.
	TwoValuedNulls = types.TwoValued
)

// Strategy selects how queries are optimized and evaluated.
type Strategy string

// The available strategies.
const (
	// Unnested applies the paper's full rewrite set (Eqv. 1–5).
	Unnested Strategy = "unnested"
	// Canonical evaluates the canonical nested plan, memoizing
	// uncorrelated subplans (a buffer-pool-resident inner relation).
	Canonical Strategy = "canonical"
	// S1 models the weakest commercial baseline: canonical evaluation
	// with no caching at all.
	S1 Strategy = "s1"
	// S2 models a system with OR-expansion and conjunctive unnesting but
	// no disjunctive unnesting.
	S2 Strategy = "s2"
	// S3 models a system that reorders disjuncts by rank (cheap
	// predicate first) but cannot decorrelate.
	S3 Strategy = "s3"
	// CostBased estimates the cost of the canonical, reordered and
	// unnested plans and executes the cheapest — the cost-based
	// application of the equivalences the paper's introduction calls
	// for ("some unnesting strategies do not always result in better
	// plans").
	CostBased Strategy = "costbased"
)

// Strategies lists the paper's five systems in presentation order
// (CostBased is a separate optimizer mode, not one of the compared
// systems).
func Strategies() []Strategy { return []Strategy{S1, S2, S3, Canonical, Unnested} }

// DB is an in-memory database: a catalog of tables plus query machinery.
// It is safe for concurrent use: queries pin an immutable catalog
// snapshot at plan time (snapshot-isolated reads — an in-flight query
// never observes a torn write), DML and DDL build new table versions
// copy-on-write and commit them atomically, and an admission gate sheds
// excess concurrent queries with ErrOverloaded instead of thrashing.
// See the OpenOption set (WithMaxConcurrent, WithMaxQueued,
// WithAdmissionWait, WithSharedTupleLimit) and README "Concurrency &
// overload". The data loaders (LoadRST, LoadTPCH) are the one
// exception: run them during setup, before serving concurrent traffic.
type DB struct {
	cat *catalog.Catalog

	// viewMu guards the views map: queries copy it at plan time, view
	// DDL mutates it.
	viewMu sync.RWMutex
	views  map[string]*sqlparser.SelectStmt

	// writeMu serializes Exec statements (DML and DDL), making each a
	// little transaction: read a consistent pre-image, compute the new
	// version, swap it in. Readers never take it.
	writeMu sync.Mutex

	// nulls is the DB-wide default null mode (WithTwoValuedNulls);
	// per-query WithNullMode overrides it. Immutable after Open.
	nulls types.NullMode

	// gate is the admission controller; nil means unlimited admission.
	gate *gate
	// budget is the DB-wide resident-tuple budget shared by all
	// concurrent queries; nil means per-query limits only.
	budget *exec.Budget

	// pcache/rcache are the plan and result cache tiers; nil disables
	// the tier (WithoutCache, or a negative size). See DESIGN.md §8.
	pcache *cache.PlanCache
	rcache *cache.ResultCache
	// viewEpoch advances on every CREATE/DROP VIEW. View DDL does not
	// bump the catalog version (it touches no table), so the plan cache
	// keys on this too — a redefined view makes cached plans that were
	// translated through the old definition stop matching.
	viewEpoch atomic.Uint64

	// tele is the workload-statistics collector every query lifecycle
	// event flows through; nil when WithoutTelemetry disabled it (the
	// whole layer then costs one pointer test per query). See
	// DB.WorkloadStats and DESIGN.md §12.
	tele *telemetry.Collector
	// start anchors WorkloadStats.Uptime.
	start time.Time
	// debug is the opt-in debug HTTP listener (WithDebugAddr); debugErr
	// records a failed bind, surfaced by DebugAddr. debugExtra, when
	// set (WithDebugMetrics), is called per /metrics scrape and its
	// output appended after the engine's own families — how disqod
	// publishes its session gauges on the engine's page.
	debug      *debugServer
	debugErr   error
	debugExtra func() []byte

	// Durability (WithDataDir; see durability.go and DESIGN.md §13).
	// wal is nil for a volatile DB. The checkpoint bookkeeping fields
	// are guarded by writeMu (only write statements touch them);
	// recovering suppresses re-logging while Open replays the log tail
	// through the ordinary write path.
	wal             *wal.Log
	dataDir         string
	checkpointEvery int
	sinceCheckpoint int
	lastCkptErr     error
	recovering      bool
	// replayed counts log records applied by crash recovery at Open.
	replayed atomic.Uint64
	// viewSQL keeps each view's original CREATE VIEW text (normalized),
	// keyed like views, so checkpoints can serialize definitions.
	// Guarded by viewMu.
	viewSQL map[string]string

	// Close drain lifecycle (see durability.go): every public entry
	// point brackets itself with begin/end; Close flips closed and
	// waits for inflight to reach zero.
	lifeMu       sync.Mutex
	closed       bool
	inflight     int
	idle         chan struct{}
	closeErr     error
	drainTimeout time.Duration

	// Replica apply state (see replica.go): replicaMu serializes the
	// apply loop and orders strictly before writeMu; replicaLSN is the
	// last log record applied, replicaSnaps/replicaRecs count applies.
	replicaMu    sync.Mutex
	replicaLSN   uint64
	replicaSnaps uint64
	replicaRecs  uint64
}

// OpenOptions configures a DB at Open time. The zero value of each
// field selects the documented default.
type OpenOptions struct {
	// MaxConcurrent bounds the queries executing at once; 0 derives the
	// default from GOMAXPROCS (8×), and a negative value disables
	// admission control entirely.
	MaxConcurrent int
	// MaxQueued bounds the FIFO wait queue behind a full gate; queries
	// beyond it are shed immediately with ErrOverloaded. 0 derives the
	// default (4 × MaxConcurrent).
	MaxQueued int
	// AdmissionWait is the longest a query waits in the queue before it
	// is shed with ErrOverloaded; 0 waits indefinitely (until a slot
	// opens or the query's context is done).
	AdmissionWait time.Duration
	// SharedTupleLimit bounds the tuples simultaneously resident across
	// ALL concurrent queries (WithTupleLimit bounds one query); the
	// query whose allocation crosses it aborts with ErrMemoryLimit.
	// 0 means no shared budget.
	SharedTupleLimit int64
	// PlanCacheBytes bounds the plan cache (0 selects the 4 MiB
	// default; negative disables the tier).
	PlanCacheBytes int64
	// ResultCacheBytes bounds the result cache (0 selects the 16 MiB
	// default; negative disables the tier).
	ResultCacheBytes int64
	// DisableCache turns both cache tiers off; every query re-plans and
	// re-executes from scratch, byte-identically to a cached run.
	DisableCache bool
	// DisableTelemetry turns the workload-statistics layer off: no
	// statement registry, no latency histograms, no slow-query log.
	// WorkloadStats still reports cache, admission, and budget state.
	DisableTelemetry bool
	// SlowQueryThreshold arms the slow-query ring buffer: every executed
	// query at or over the threshold is captured with its
	// ANALYZE-annotated plan. Implies per-operator metrics collection on
	// every query (the price of always having the annotated plan when an
	// offender shows up). 0 disables capture.
	SlowQueryThreshold time.Duration
	// DebugAddr starts an HTTP listener serving /metrics (Prometheus
	// text format), /statz (the WorkloadStats snapshot as JSON), and
	// /debug/pprof. Empty means no listener. Use DB.DebugAddr for the
	// bound address (":0" picks a free port) and DB.Close to stop it.
	DebugAddr string
	// DebugMetrics, when set, is called on each /metrics scrape and its
	// output appended after the engine's families (WithDebugMetrics).
	DebugMetrics func() []byte
	// DataDir makes the database durable: committed writes append to a
	// write-ahead log under this directory and Open recovers from it.
	// Empty (the default) keeps the engine fully in-memory.
	DataDir string
	// SyncEvery is the WAL group-commit batch: fsync after every nth
	// record (0 or 1 = every record).
	SyncEvery int
	// SyncInterval bounds a group-commit batch's unsynced lifetime with
	// a background fsync ticker; 0 disables it.
	SyncInterval time.Duration
	// CheckpointEvery auto-checkpoints after every n logged records;
	// 0 checkpoints only on explicit DB.Checkpoint calls.
	CheckpointEvery int
	// TwoValuedNulls makes two-valued logic the DB-wide default null
	// mode: predicates over NULL evaluate FALSE instead of UNKNOWN.
	// Individual queries may still override with WithNullMode.
	TwoValuedNulls bool
	// DrainTimeout bounds Close's wait for in-flight work; 0 waits
	// indefinitely.
	DrainTimeout time.Duration
	// walFault is the crash-chaos hook (withWALFaultInjector).
	walFault *faultinject.Injector
}

// OpenOption configures Open.
type OpenOption func(*OpenOptions)

// WithMaxConcurrent bounds how many queries execute at once (default:
// 8 × GOMAXPROCS; n < 0 disables admission control). Excess queries
// wait in a FIFO queue — see WithMaxQueued and WithAdmissionWait.
func WithMaxConcurrent(n int) OpenOption {
	return func(o *OpenOptions) { o.MaxConcurrent = n }
}

// WithMaxQueued bounds the admission wait queue (default:
// 4 × MaxConcurrent). A query arriving at a full queue returns
// ErrOverloaded immediately — load is shed, not stacked.
func WithMaxQueued(n int) OpenOption {
	return func(o *OpenOptions) { o.MaxQueued = n }
}

// WithAdmissionWait bounds how long a query may wait for an execution
// slot before it is shed with ErrOverloaded (default: indefinitely).
func WithAdmissionWait(d time.Duration) OpenOption {
	return func(o *OpenOptions) { o.AdmissionWait = d }
}

// WithSharedTupleLimit installs a DB-wide resident-tuple budget shared
// by all concurrent queries: per-query WithTupleLimit guards still
// apply, but the sum across in-flight queries may never exceed n — the
// query whose allocation crosses the line aborts with ErrMemoryLimit
// (alias ErrTupleLimit), and its charge is released when it finishes.
func WithSharedTupleLimit(n int64) OpenOption {
	return func(o *OpenOptions) { o.SharedTupleLimit = n }
}

// WithPlanCacheSize bounds the plan cache to n bytes (default 4 MiB;
// n < 0 disables the tier). Cached plans are keyed by normalized SQL,
// strategy, catalog version, and view epoch — see DESIGN.md §8.
func WithPlanCacheSize(n int64) OpenOption {
	return func(o *OpenOptions) { o.PlanCacheBytes = n }
}

// WithResultCacheSize bounds the result cache to n bytes (default
// 16 MiB; n < 0 disables the tier). Cached results are keyed by
// physical-plan fingerprint, strategy, and the version of every
// referenced table, so a hit is always byte-identical to a fresh
// execution; cached tuples are additionally charged against the shared
// tuple budget when one is configured (WithSharedTupleLimit).
func WithResultCacheSize(n int64) OpenOption {
	return func(o *OpenOptions) { o.ResultCacheBytes = n }
}

// WithoutCache disables both cache tiers: every query parses, plans,
// and executes from scratch. Results are byte-identical either way; the
// benchmarks use this to measure execution rather than cache hits.
func WithoutCache() OpenOption {
	return func(o *OpenOptions) { o.DisableCache = true }
}

// WithoutTelemetry disables the workload-statistics layer (statement
// registry, latency histograms, slow-query log). On by default; the
// telemetry hot path is allocation-free, so disabling it is for
// measuring the engine's floor, not for everyday use.
func WithoutTelemetry() OpenOption {
	return func(o *OpenOptions) { o.DisableTelemetry = true }
}

// WithSlowQueryThreshold arms the slow-query ring buffer: every
// executed query at or over d is captured — SQL, strategy, path,
// elapsed time, and the ANALYZE-annotated physical plan — and kept in a
// fixed-size ring readable via WorkloadStats (or \slow in the REPL).
// Arming the threshold turns on per-operator metrics collection for
// every query, so offenders always carry an annotated plan.
func WithSlowQueryThreshold(d time.Duration) OpenOption {
	return func(o *OpenOptions) { o.SlowQueryThreshold = d }
}

// WithDebugAddr starts a debug HTTP listener on addr serving /metrics
// (Prometheus text format), /statz (WorkloadStats as JSON), and
// /debug/pprof (the standard profiles). ":0" binds a free port;
// DB.DebugAddr reports the bound address or the bind error, and
// DB.Close shuts the listener down gracefully.
func WithDebugAddr(addr string) OpenOption {
	return func(o *OpenOptions) { o.DebugAddr = addr }
}

// WithTwoValuedNulls opens the database in two-valued null mode: every
// predicate over a NULL — comparisons, LIKE, quantified memberships —
// evaluates FALSE rather than UNKNOWN, and NOT is classical complement
// (per "Handling SQL Nulls with Two-Valued Logic", arXiv 2012.13198).
// Aggregates, grouping, and arithmetic keep their standard NULL
// behavior; only predicate truth values change. The mode is a planning
// input as well as an execution one (a few rewrites are logic-specific),
// so both cache tiers key on it. Per-query WithNullMode overrides it.
func WithTwoValuedNulls() OpenOption {
	return func(o *OpenOptions) { o.TwoValuedNulls = true }
}

// WithDebugMetrics appends f's output to every /metrics scrape, after
// the engine's own families. f must return complete Prometheus
// text-format families and be safe for concurrent calls; disqod uses
// this to publish its session and connection gauges on the same page
// as the engine's. Only meaningful together with WithDebugAddr.
func WithDebugMetrics(f func() []byte) OpenOption {
	return func(o *OpenOptions) { o.DebugMetrics = f }
}

// Open creates a database. With no options the engine is fully
// in-memory (volatile) and Open never fails; the admission gate admits
// 8×GOMAXPROCS concurrent queries, queues 4× more, waits without a
// budget, installs no shared tuple budget, and enables a 4 MiB plan
// cache and a 16 MiB result cache.
//
// With WithDataDir, Open recovers the directory's committed state
// before returning: it loads the newest valid snapshot, replays the
// write-ahead log's tail through the serialized write path, silently
// truncates a torn final record, and fails with a *RecoveryError for
// damage a crash cannot explain (DESIGN.md §13).
func Open(opts ...OpenOption) (*DB, error) {
	var o OpenOptions
	for _, fn := range opts {
		fn(&o)
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 8 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueued == 0 && o.MaxConcurrent > 0 {
		o.MaxQueued = 4 * o.MaxConcurrent
	}
	db := &DB{
		cat:          catalog.New(),
		views:        make(map[string]*sqlparser.SelectStmt),
		viewSQL:      make(map[string]string),
		gate:         newGate(o.MaxConcurrent, o.MaxQueued, o.AdmissionWait),
		start:        time.Now(),
		drainTimeout: o.DrainTimeout,
	}
	if o.TwoValuedNulls {
		db.nulls = types.TwoValued
	}
	if !o.DisableTelemetry {
		db.tele = telemetry.New(telemetry.Config{SlowThreshold: o.SlowQueryThreshold})
	}
	if o.SharedTupleLimit > 0 {
		db.budget = exec.NewBudget(o.SharedTupleLimit)
	}
	if !o.DisableCache {
		if o.PlanCacheBytes == 0 {
			o.PlanCacheBytes = defaultPlanCacheBytes
		}
		if o.ResultCacheBytes == 0 {
			o.ResultCacheBytes = defaultResultCacheBytes
		}
		if o.PlanCacheBytes > 0 {
			db.pcache = cache.NewPlanCache(o.PlanCacheBytes)
		}
		if o.ResultCacheBytes > 0 {
			// Method values on a nil *Budget are valid: TryCharge then
			// always admits and Release is a no-op.
			db.rcache = cache.NewResultCache(o.ResultCacheBytes,
				db.budget.TryCharge, db.budget.Release)
		}
	}
	if o.DataDir != "" {
		if err := db.openDurable(o); err != nil {
			return nil, err
		}
	}
	if o.DebugAddr != "" {
		db.debugExtra = o.DebugMetrics
		db.debug, db.debugErr = startDebugServer(db, o.DebugAddr)
	}
	return db, nil
}

// DebugAddr returns the debug HTTP listener's bound address (useful
// with WithDebugAddr(":0")), or the bind error if the listener failed
// to start. Without WithDebugAddr both returns are zero.
func (db *DB) DebugAddr() (string, error) {
	if db.debugErr != nil {
		return "", db.debugErr
	}
	if db.debug == nil {
		return "", nil
	}
	return db.debug.addr(), nil
}

// Close lives in durability.go: it drains in-flight work (bounded by
// WithDrainTimeout), rejects new admissions with ErrClosed, syncs and
// closes the WAL, and stops the debug listener.

// translatorOn builds a statement translator over a catalog view, aware
// of the DB's views as of now (the map is copied under the view lock so
// concurrent view DDL cannot tear a running translation).
func (db *DB) translatorOn(src catalog.Reader) *translate.Translator {
	db.viewMu.RLock()
	views := make(map[string]*sqlparser.SelectStmt, len(db.views))
	for k, v := range db.views {
		views[k] = v
	}
	db.viewMu.RUnlock()
	return translate.New(src).WithViews(views)
}

// Views lists the defined view names.
func (db *DB) Views() []string {
	db.viewMu.RLock()
	out := make([]string, 0, len(db.views))
	for n := range db.views {
		out = append(out, n)
	}
	db.viewMu.RUnlock()
	sort.Strings(out)
	return out
}

// CreateTable defines a new table.
func (db *DB) CreateTable(name string, cols []Column) error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeGuard(); err != nil {
		return err
	}
	pre := db.cat.Version()
	if err := db.createTableLocked(name, cols); err != nil {
		return err
	}
	if db.logging() {
		return db.logLocked(wal.KindCreateTable, pre, encodeCreateTableBody(name, cols))
	}
	return nil
}

// createTableLocked is CreateTable's body under writeMu, shared with
// Exec's CREATE TABLE case (which logs the statement text instead).
func (db *DB) createTableLocked(name string, cols []Column) error {
	_, err := db.cat.Create(name, cols)
	if err == nil {
		db.afterWrite(name)
	}
	return err
}

// DropTable removes a table.
func (db *DB) DropTable(name string) error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeGuard(); err != nil {
		return err
	}
	pre := db.cat.Version()
	if err := db.dropTableLocked(name); err != nil {
		return err
	}
	if db.logging() {
		return db.logLocked(wal.KindDropTable, pre, []byte(name))
	}
	return nil
}

// dropTableLocked is DropTable's body under writeMu, shared with Exec's
// DROP TABLE case.
func (db *DB) dropTableLocked(name string) error {
	err := db.cat.Drop(name)
	if err == nil {
		db.afterWrite(name)
	}
	return err
}

// Tables lists the defined table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// Insert appends rows to a table. The insert is atomic: either every
// row commits as one new table version, or (on a type error) none do,
// and concurrent queries keep reading the previous version throughout.
// On a durable DB the rows are logged in binary form (not as SQL text),
// so values round-trip exactly.
func (db *DB) Insert(table string, rows ...[]Value) error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeGuard(); err != nil {
		return err
	}
	pre := db.cat.Version()
	if err := db.cat.InsertRows(table, rows...); err != nil {
		return err
	}
	db.afterWrite(table)
	if db.logging() {
		return db.logLocked(wal.KindInsert, pre, encodeInsertBody(table, rows))
	}
	return nil
}

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(table string) (int, error) {
	tbl, err := db.cat.Lookup(table)
	if err != nil {
		return 0, err
	}
	return tbl.Rel.Cardinality(), nil
}

// LoadRST generates the paper's synthetic R, S, T tables at the given
// scale factors (SF 1 = 10,000 rows).
func (db *DB) LoadRST(sfR, sfS, sfT float64) error {
	return db.loadRST(datagen.RSTConfig{SFR: sfR, SFS: sfS, SFT: sfT})
}

// loadRST runs the generator under the write lock. Datagen is seeded
// and deterministic, so a durable DB logs just the config — replaying
// it rebuilds the identical rows.
func (db *DB) loadRST(cfg datagen.RSTConfig) error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeGuard(); err != nil {
		return err
	}
	pre := db.cat.Version()
	if err := datagen.LoadRST(db.cat, cfg); err != nil {
		return err
	}
	for _, t := range []string{"r", "s", "t"} {
		db.afterWrite(t)
	}
	if db.logging() {
		return db.logLocked(wal.KindLoadRST, pre, encodeLoadRSTBody(cfg))
	}
	return nil
}

// LoadTPCH generates TPC-H tables at the given scale factor. With no
// table names it generates the five tables Query 2d touches; pass
// datagen table names (or "all") for more.
func (db *DB) LoadTPCH(sf float64, tables ...string) error {
	cfg := datagen.TPCHConfig{SF: sf}
	if len(tables) == 1 && tables[0] == "all" {
		cfg.Tables = datagen.TPCHAllTables
	} else if len(tables) > 0 {
		cfg.Tables = tables
	}
	return db.loadTPCH(cfg)
}

// loadTPCH is LoadTPCH's locked body; see loadRST for why only the
// config is logged.
func (db *DB) loadTPCH(cfg datagen.TPCHConfig) error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeGuard(); err != nil {
		return err
	}
	pre := db.cat.Version()
	if err := datagen.LoadTPCH(db.cat, cfg); err != nil {
		return err
	}
	touched := cfg.Tables
	if len(touched) == 0 {
		touched = datagen.TPCHQuery2dTables
	}
	for _, t := range touched {
		db.afterWrite(t)
	}
	if db.logging() {
		return db.logLocked(wal.KindLoadTPCH, pre, encodeLoadTPCHBody(cfg))
	}
	return nil
}

// queryConfig carries per-query options.
type queryConfig struct {
	strategy   Strategy
	path       ExecutionPath
	timeout    time.Duration
	maxTuples  int64
	workers    int
	morselSize int
	metrics    bool
	tracer     Tracer
	ctx        context.Context
	fault      *faultinject.Injector
	nulls      types.NullMode
	// began anchors the telemetry-observed wall time at API entry, so
	// recorded latencies include planning and cache lookups — what the
	// caller actually waited.
	began time.Time
}

// newQueryConfig is the per-call default: unnested strategy on the
// vectorized path, under the DB's default null mode.
func (db *DB) newQueryConfig() queryConfig {
	return queryConfig{strategy: Unnested, path: PathVector, nulls: db.nulls}
}

// Option configures a single Query or Explain call.
type Option func(*queryConfig)

// ExecutionPath selects the evaluation substrate for a query. Both
// paths produce byte-identical results; the row path is the engine's
// correctness oracle, the vectorized path is the fast default.
type ExecutionPath = exec.Path

const (
	// PathRow interprets plans tuple-at-a-time.
	PathRow = exec.PathRow
	// PathVector evaluates eligible operators batch-at-a-time over
	// columnar vectors, falling back to the row interpreter per node.
	PathVector = exec.PathVector
)

// WithExecutionPath selects row or vectorized evaluation (default
// PathVector). Eligible operators — scans, filters, bypass σ±,
// hash-join probe sides without residual predicates, projections, and
// compiled Map expressions — run column-at-a-time on the vectorized
// path; everything else (and every node whose predicate needs an outer
// environment, e.g. correlated subqueries) falls back to the row
// interpreter per node. Results are byte-identical on both paths.
func WithExecutionPath(p ExecutionPath) Option {
	return func(c *queryConfig) { c.path = p }
}

// WithMorselSize sets the chunk length hot operators split their input
// into (default exec.DefaultMorselSize, 1024). Values are clamped to
// [exec.MinMorselSize, exec.MaxMorselSize]; the morsel is the unit of
// work between cancellation polls, so the bound is also a cancellation
// latency guarantee. For any fixed morsel size, results are
// byte-identical across worker counts.
func WithMorselSize(n int) Option {
	return func(c *queryConfig) { c.morselSize = n }
}

// WithStrategy selects the optimization strategy (default Unnested).
func WithStrategy(s Strategy) Option {
	return func(c *queryConfig) { c.strategy = s }
}

// WithNullMode overrides the null mode for one call (default: the DB's
// mode — ThreeValuedNulls unless Open was given WithTwoValuedNulls).
// The mode shapes both planning (a few rewrites are logic-specific) and
// evaluation, and both cache tiers key on it, so mixed-mode workloads
// never share plans or results across logics.
func WithNullMode(m NullMode) Option {
	return func(c *queryConfig) { c.nulls = m }
}

// WithTimeout aborts evaluation after d (default: no limit). Timed-out
// queries return ErrTimeout.
func WithTimeout(d time.Duration) Option {
	return func(c *queryConfig) { c.timeout = d }
}

// WithTupleLimit aborts evaluation with ErrMemoryLimit once more than n
// tuples have been materialized (default: no limit) — a guard against
// plans whose intermediate results outgrow memory.
func WithTupleLimit(n int64) Option {
	return func(c *queryConfig) { c.maxTuples = n }
}

// WithWorkers sets the morsel-parallel worker pool size (default:
// GOMAXPROCS). Hot operators — scans, filters, both σ± streams, hash
// join build and probe, grouping — split large inputs into fixed-size
// morsels claimed by the pool; 1 forces sequential execution. Results
// are deterministic: every worker count produces byte-identical output.
func WithWorkers(n int) Option {
	return func(c *queryConfig) { c.workers = n }
}

// WithMetrics enables per-operator runtime metrics collection for the
// call; the report is available from Result.Metrics. Off by default —
// collection adds per-operator bookkeeping to execution. Analyze
// enables it implicitly.
func WithMetrics() Option {
	return func(c *queryConfig) { c.metrics = true }
}

// WithTracer streams operator open/morsel/close spans to t during
// execution (default: none). The tracer must be safe for concurrent
// use; morsel workers emit events in parallel.
func WithTracer(t Tracer) Option {
	return func(c *queryConfig) { c.tracer = t }
}

// WithContext attaches a cancellation context to the query: every
// morsel worker polls it at morsel boundaries (and in the periodic
// in-loop tick), so cancelling returns within roughly one morsel's
// worth of work with ctx.Err() wrapped in a *QueryError.
// db.QueryContext(ctx, sql) is shorthand for Query(sql,
// WithContext(ctx)).
func WithContext(ctx context.Context) Option {
	return func(c *queryConfig) { c.ctx = ctx }
}

// withFaultInjector wires a deterministic fault injector
// (internal/faultinject) into execution. Unexported on purpose: it is
// the chaos-test hook, not public API.
func withFaultInjector(fi *faultinject.Injector) Option {
	return func(c *queryConfig) { c.fault = fi }
}

// ErrTimeout is returned when a query exceeds its WithTimeout deadline.
var ErrTimeout = exec.ErrTimeout

// ErrMemoryLimit is returned when a query materializes more tuples than
// its WithTupleLimit budget.
var ErrMemoryLimit = exec.ErrMemoryLimit

// Result is a query result: column names, rows, and execution counters.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Stats counts the work performed (comparisons, tuples, subquery
	// evaluations), letting callers compare strategies analytically.
	Stats exec.Stats
	// Rewrites lists the equivalences the optimizer applied.
	Rewrites []string
	// Elapsed is the wall-clock execution time (excluding parse and
	// optimization).
	Elapsed time.Duration
	// metrics is the per-operator report, set when WithMetrics was on.
	metrics *PlanMetrics
}

// Metrics returns the per-operator runtime report, or nil unless the
// query ran with WithMetrics.
func (r *Result) Metrics() *PlanMetrics { return r.metrics }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for k := len(v); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}

// plan builds the optimized plan for a statement under a strategy.
// Everything — translation, rewriting, cost estimation — reads src, so
// planning against a Snapshot is immune to concurrent DML.
func (db *DB) plan(src catalog.Reader, sql string, cfg queryConfig) (algebra.Op, []string, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return db.planAST(src, stmt, cfg)
}

// planAST is plan for an already-parsed statement — the path prepared
// statements (Stmt) take, having paid for parsing once at Prepare.
func (db *DB) planAST(src catalog.Reader, stmt *sqlparser.SelectStmt, cfg queryConfig) (algebra.Op, []string, error) {
	canonical, err := db.translatorOn(src).Translate(stmt)
	if err != nil {
		return nil, nil, err
	}
	switch cfg.strategy {
	case Unnested, "":
		rw := rewrite.New(src, rewrite.AllCaps()).WithNulls(cfg.nulls)
		plan, err := rw.Rewrite(canonical)
		if err != nil {
			return nil, nil, err
		}
		return plan, rw.Trace, nil
	case S2:
		rw := rewrite.New(src, rewrite.Caps{Conjunctive: true, ORExpansion: true, Quantified: true}).WithNulls(cfg.nulls)
		plan, err := rw.Rewrite(canonical)
		if err != nil {
			return nil, nil, err
		}
		return plan, rw.Trace, nil
	case S3:
		ro := rewrite.NewReorderer(src)
		plan, err := ro.Rewrite(canonical)
		if err != nil {
			return nil, nil, err
		}
		var trace []string
		if ro.Applied > 0 {
			trace = []string{fmt.Sprintf("reordered %d predicates by rank", ro.Applied)}
		}
		return plan, trace, nil
	case Canonical, S1:
		return canonical, nil, nil
	case CostBased:
		return planCostBased(src, canonical, cfg.nulls)
	default:
		return nil, nil, fmt.Errorf("disqo: unknown strategy %q", cfg.strategy)
	}
}

// planCostBased compares the estimated cost of the canonical plan, the
// rank-reordered plan, and the fully unnested plan, and returns the
// cheapest.
func planCostBased(src catalog.Reader, canonical algebra.Op, nulls types.NullMode) (algebra.Op, []string, error) {
	est := stats.New(src)

	rw := rewrite.New(src, rewrite.AllCaps()).WithNulls(nulls)
	unnested, err := rw.Rewrite(canonical)
	if err != nil {
		return nil, nil, err
	}
	ro := rewrite.NewReorderer(src)
	reordered, err := ro.Rewrite(canonical)
	if err != nil {
		return nil, nil, err
	}

	type candidate struct {
		name  string
		plan  algebra.Op
		trace []string
		cost  float64
	}
	cands := []candidate{
		{name: "canonical", plan: canonical, cost: est.PlanCost(canonical)},
		{name: "reordered", plan: reordered, cost: est.PlanCost(reordered)},
		{name: "unnested", plan: unnested, trace: rw.Trace, cost: est.PlanCost(unnested)},
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	trace := append([]string(nil), best.trace...)
	trace = append(trace, fmt.Sprintf(
		"cost-based choice: %s (canonical=%.3g, reordered=%.3g, unnested=%.3g)",
		best.name, cands[0].cost, cands[1].cost, cands[2].cost))
	return best.plan, trace, nil
}

// execOptions maps a strategy to executor options, wiring in the DB's
// shared tuple budget when one is configured.
func (db *DB) execOptions(cfg queryConfig) exec.Options {
	opt := exec.Options{
		Cache:      exec.CacheAll,
		Timeout:    cfg.timeout,
		MaxTuples:  cfg.maxTuples,
		Workers:    cfg.workers,
		MorselSize: cfg.morselSize,
		Path:       cfg.path,
		Metrics:    cfg.metrics,
		Tracer:     cfg.tracer,
		Ctx:        cfg.ctx,
		Fault:      cfg.fault,
		Budget:     db.budget,
		Nulls:      cfg.nulls,
	}
	switch cfg.strategy {
	case S1:
		opt.Cache = exec.CacheNone
	case Canonical, S3, S2:
		// Conventional engines keep base-table pages resident (buffer
		// pool) but rebuild intermediate results per outer tuple.
		opt.Cache = exec.CacheScans
	}
	return opt
}

// Exec runs a DDL or DML statement: CREATE/DROP TABLE, CREATE/DROP
// VIEW, INSERT, UPDATE, or DELETE. It returns the number of rows
// affected. Statements are serialized with each other (one writer at a
// time, each a little read-compute-swap transaction) but never block
// concurrent queries: each statement commits a new table version
// atomically, and in-flight snapshot readers keep the version they
// pinned.
func (db *DB) Exec(sql string) (int, error) {
	if err := db.begin(); err != nil {
		return 0, err
	}
	defer db.end()
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return 0, err
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeGuard(); err != nil {
		return 0, err
	}
	pre := db.cat.Version()
	n, err := db.execLocked(stmt, sql)
	if err == nil && db.logging() {
		// Log-after-commit: the statement's new version is already live in
		// memory; its normalized text goes to the WAL before the caller
		// learns it succeeded. An append/sync failure seals the log and is
		// reported here — the in-memory commit stands until restart.
		if lerr := db.logLocked(wal.KindSQL, pre, []byte(normalizeSQL(sql))); lerr != nil {
			return n, lerr
		}
	}
	return n, err
}

// execLocked dispatches one parsed statement under writeMu. It never
// writes to the WAL itself — Exec logs the statement text on success,
// and the typed APIs (CreateTable, Insert, ...) log binary records.
func (db *DB) execLocked(stmt sqlparser.Statement, sql string) (int, error) {
	switch x := stmt.(type) {
	case *sqlparser.CreateTableStmt:
		cols := make([]Column, len(x.Columns))
		for i, c := range x.Columns {
			var kind types.Kind
			switch c.Type {
			case "INTEGER":
				kind = types.KindInt
			case "DOUBLE":
				kind = types.KindFloat
			case "VARCHAR":
				kind = types.KindString
			case "BOOLEAN":
				kind = types.KindBool
			default:
				return 0, fmt.Errorf("disqo: unknown column type %q", c.Type)
			}
			cols[i] = Column{Name: c.Name, Type: kind}
		}
		return 0, db.createTableLocked(x.Name, cols)
	case *sqlparser.DropTableStmt:
		return 0, db.dropTableLocked(x.Name)
	case *sqlparser.InsertStmt:
		rows := make([][]Value, len(x.Rows))
		for r, row := range x.Rows {
			vals := make([]Value, len(row))
			for i, lit := range row {
				switch v := lit.(type) {
				case *sqlparser.IntLit:
					vals[i] = Int(v.Val)
				case *sqlparser.FloatLit:
					vals[i] = Float(v.Val)
				case *sqlparser.StringLit:
					vals[i] = String(v.Val)
				case *sqlparser.BoolLit:
					vals[i] = Bool(v.Val)
				case *sqlparser.NullLit:
					vals[i] = Null()
				default:
					return 0, fmt.Errorf("disqo: INSERT values must be literals, got %s", lit)
				}
			}
			rows[r] = vals
		}
		if err := db.cat.InsertRows(x.Table, rows...); err != nil {
			return 0, err
		}
		db.afterWrite(x.Table)
		return len(rows), nil
	case *sqlparser.CreateViewStmt:
		key := strings.ToLower(x.Name)
		if _, err := db.cat.Lookup(key); err == nil {
			return 0, fmt.Errorf("disqo: a table named %q already exists", x.Name)
		}
		db.viewMu.RLock()
		_, dup := db.views[key]
		db.viewMu.RUnlock()
		if dup {
			return 0, fmt.Errorf("disqo: view %q already exists", x.Name)
		}
		// Validate the body now so a broken view fails at definition time.
		if _, err := db.translatorOn(db.cat.Snapshot()).Translate(x.Body); err != nil {
			return 0, fmt.Errorf("disqo: invalid view body: %w", err)
		}
		db.viewMu.Lock()
		db.views[key] = x.Body
		db.viewSQL[key] = normalizeSQL(sql)
		db.viewMu.Unlock()
		db.viewEpoch.Add(1)
		return 0, nil
	case *sqlparser.DropViewStmt:
		key := strings.ToLower(x.Name)
		db.viewMu.Lock()
		defer db.viewMu.Unlock()
		if _, ok := db.views[key]; !ok {
			return 0, fmt.Errorf("disqo: no view %q", x.Name)
		}
		delete(db.views, key)
		delete(db.viewSQL, key)
		db.viewEpoch.Add(1)
		return 0, nil
	case *sqlparser.DeleteStmt:
		return db.execDelete(x)
	case *sqlparser.UpdateStmt:
		return db.execUpdate(x)
	case *sqlparser.SelectStmt:
		return 0, fmt.Errorf("disqo: use Query for SELECT statements")
	default:
		return 0, fmt.Errorf("disqo: unsupported statement %T", stmt)
	}
}

// matchingRows evaluates a WHERE predicate over one table by running the
// equivalent SELECT through the full optimizer (so subqueries in DML
// predicates are unnested too) and returns the set of matching tuples.
// It reads src — the pre-image snapshot of the statement being executed.
func (db *DB) matchingRows(src catalog.Reader, table string, where sqlparser.Expr) (map[uint64][][]Value, error) {
	sel := &sqlparser.SelectStmt{
		Star:  true,
		From:  []sqlparser.TableRef{{Table: table}},
		Where: where,
	}
	plan, err := db.translatorOn(src).Translate(sel)
	if err != nil {
		return nil, err
	}
	rw := rewrite.New(src, rewrite.AllCaps()).WithNulls(db.nulls)
	plan, err = rw.Rewrite(plan)
	if err != nil {
		return nil, err
	}
	ex := exec.New(src, exec.Options{Cache: exec.CacheAll, Budget: db.budget, Nulls: db.nulls})
	defer ex.Close()
	rel, err := ex.Run(plan)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][][]Value, rel.Cardinality())
	for _, t := range rel.Tuples {
		h := types.HashTuple(t)
		out[h] = append(out[h], t)
	}
	return out, nil
}

func rowMatches(set map[uint64][][]Value, row []Value) bool {
	for _, m := range set[types.HashTuple(row)] {
		if types.TuplesIdentical(m, row) {
			return true
		}
	}
	return false
}

// execDelete removes the rows satisfying the predicate. Matching is
// value-based (the relation is a bag): identical duplicates live or die
// together, which coincides with SQL's semantics for a value-based
// predicate. The caller holds writeMu; the kept row set is computed
// against the stable pre-image and committed as one new table version.
func (db *DB) execDelete(x *sqlparser.DeleteStmt) (int, error) {
	snap := db.cat.Snapshot()
	tbl, err := snap.Lookup(x.Table)
	if err != nil {
		return 0, err
	}
	if x.Where == nil {
		n := tbl.Rel.Cardinality()
		if err := db.cat.ReplaceRows(x.Table, nil); err != nil {
			return 0, err
		}
		db.afterWrite(x.Table)
		return n, nil
	}
	matching, err := db.matchingRows(snap, x.Table, x.Where)
	if err != nil {
		return 0, err
	}
	kept := make([][]Value, 0, len(tbl.Rel.Tuples))
	deleted := 0
	for _, row := range tbl.Rel.Tuples {
		if rowMatches(matching, row) {
			deleted++
			continue
		}
		kept = append(kept, row)
	}
	if deleted == 0 {
		return 0, nil
	}
	if err := db.cat.ReplaceRows(x.Table, kept); err != nil {
		return 0, err
	}
	db.afterWrite(x.Table)
	return deleted, nil
}

// execUpdate rewrites the rows satisfying the predicate, evaluating SET
// expressions against the pre-update row (standard SQL semantics). The
// caller holds writeMu; the new row set is computed in full against the
// stable pre-image before the single atomic commit, so concurrent
// snapshot readers see either every change or none.
func (db *DB) execUpdate(x *sqlparser.UpdateStmt) (int, error) {
	snap := db.cat.Snapshot()
	tbl, err := snap.Lookup(x.Table)
	if err != nil {
		return 0, err
	}
	// Resolve SET targets and translate value expressions in the table's
	// scope (subqueries allowed; they evaluate canonically per row).
	colIdx := make([]int, len(x.Sets))
	valExprs := make([]algebra.Expr, len(x.Sets))
	for i, a := range x.Sets {
		idx := -1
		for j, c := range tbl.Columns {
			if strings.EqualFold(c.Name, a.Column) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("disqo: no column %q in %s", a.Column, x.Table)
		}
		colIdx[i] = idx
		ve, err := db.translatorOn(snap).TranslateTableExpr(x.Table, a.Value)
		if err != nil {
			return 0, err
		}
		valExprs[i] = ve
	}

	var matching map[uint64][][]Value
	if x.Where != nil {
		matching, err = db.matchingRows(snap, x.Table, x.Where)
		if err != nil {
			return 0, err
		}
	}
	ex := exec.New(snap, exec.Options{Cache: exec.CacheAll, Budget: db.budget, Nulls: db.nulls})
	defer ex.Close()
	updated := 0
	newRows := make([][]Value, len(tbl.Rel.Tuples))
	for i, row := range tbl.Rel.Tuples {
		if x.Where != nil && !rowMatches(matching, row) {
			newRows[i] = row
			continue
		}
		env := exec.Bind(nil, tbl.Rel.Schema, row)
		next := append([]Value(nil), row...)
		for k, ve := range valExprs {
			v, err := ex.EvalExpr(ve, env)
			if err != nil {
				return 0, err // nothing committed: the statement aborts whole
			}
			next[colIdx[k]] = v
		}
		newRows[i] = next
		updated++
	}
	if updated == 0 {
		return 0, nil
	}
	if err := db.cat.ReplaceRows(x.Table, newRows); err != nil {
		return 0, err
	}
	db.afterWrite(x.Table)
	return updated, nil
}

// Query parses, optimizes and executes a SQL statement. The query plans
// and runs against an immutable catalog snapshot pinned at entry, so
// its result reflects exactly one committed state no matter how much DML
// commits while it runs. Execution failures — timeout, tuple budget,
// cancellation, admission shedding, a recovered panic — are returned as
// a *QueryError; parse and planning errors are not wrapped.
//
// Repeated statements are served from the caches unless Open disabled
// them: the plan cache skips parse/translate/rewrite for a statement
// already optimized at this catalog version, and the result cache skips
// execution entirely when an identical physical plan already ran
// against the same table versions — the served rows are byte-identical
// to what a fresh execution would produce. Cache hits (and queries that
// join a concurrent identical execution via single-flight) do not pass
// the admission gate; only real executions consume slots.
func (db *DB) Query(sql string, opts ...Option) (*Result, error) {
	if err := db.begin(); err != nil {
		return nil, err
	}
	defer db.end()
	cfg := db.newQueryConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.began = time.Now()
	if db.tele.SlowThreshold() > 0 {
		// Armed slow log: collect per-operator metrics on every query so
		// an offender always carries its annotated plan.
		cfg.metrics = true
	}
	snap := db.cat.Snapshot()
	pi, planHit, err := db.planFor(snap, sql, cfg)
	if err != nil {
		return nil, err
	}
	return db.run(snap, sql, cfg, pi, planHit)
}

// QueryContext is Query with cancellation: it runs sql until ctx is
// done, then aborts within roughly one morsel's worth of work and
// returns ctx.Err() (context.Canceled or context.DeadlineExceeded)
// wrapped in a *QueryError. An explicit WithContext in opts overrides
// ctx.
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...Option) (*Result, error) {
	return db.Query(sql, append([]Option{WithContext(ctx)}, opts...)...)
}

// subplanNodes resolves the physical plans of the subqueries the
// executor evaluated from operator expressions.
func subplanNodes(ex *exec.Executor, plan algebra.Op) []physical.Node {
	var subs []physical.Node
	for _, sp := range collectSubplans(plan) {
		if n, ok := ex.NodeFor(sp); ok {
			subs = append(subs, n)
		}
	}
	return subs
}

// Analyze executes the statement and returns the executed physical plan
// annotated per operator with estimated vs. actual cardinality, call
// counts, memo hits, and evaluation time (EXPLAIN ANALYZE). calls>1
// shows the per-outer-tuple re-evaluation that canonical nested plans
// pay and unnested plans avoid; every printed counter except time= is
// byte-identical for any worker count.
func (db *DB) Analyze(sql string, opts ...Option) (string, error) {
	if err := db.begin(); err != nil {
		return "", err
	}
	defer db.end()
	cfg := db.newQueryConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.metrics = true
	cfg.began = time.Now()
	var norm string
	if db.tele != nil {
		norm = normalizeSQL(sql)
	}
	if err := db.gate.acquire(cfg.ctx); err != nil {
		db.observe(norm, cfg, false, 0, err, telemetry.SourceExecution)
		return "", wrapQueryError(sql, cfg, 0, err)
	}
	defer db.gate.release()
	snap := db.cat.Snapshot()
	plan, trace, err := db.plan(snap, sql, cfg)
	if err != nil {
		return "", err
	}
	ex := exec.New(snap, db.execOptions(cfg))
	defer ex.Close()
	start := time.Now()
	rel, err := ex.Run(plan)
	if err != nil {
		db.observe(norm, cfg, false, 0, err, telemetry.SourceExecution)
		return "", wrapQueryError(sql, cfg, time.Since(start), err)
	}
	elapsed := time.Since(start)
	root, err := ex.Plan(plan)
	if err != nil {
		return "", err
	}
	db.observe(norm, cfg, false, int64(rel.Cardinality()), nil, telemetry.SourceExecution)
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s   nulls: %s   rows: %d   elapsed: %s\n",
		cfg.strategy, cfg.nulls, rel.Cardinality(), elapsed.Round(time.Microsecond))
	st := ex.Stats()
	fmt.Fprintf(&b, "comparisons: %d   tuples: %d   subquery evals: %d   peak resident: %d\n\n",
		st.Comparisons, st.TuplesOut, st.SubqueryEvals, st.PeakTuples)
	annot := analyzeAnnot(ex.NodeMetrics())
	if db.tele != nil {
		db.tele.ObserveOps(norm, opObs(newPlanMetrics(root, subplanNodes(ex, plan), ex.NodeMetrics())))
		if th := db.tele.SlowThreshold(); th > 0 && time.Since(cfg.began) >= th {
			db.tele.RecordSlow(telemetry.SlowQuery{
				Time:     time.Now(),
				SQL:      norm,
				Strategy: string(strategyOf(cfg)),
				Path:     cfg.path.String(),
				Elapsed:  time.Since(cfg.began),
				Rows:     int64(rel.Cardinality()),
				Plan:     physical.ExplainAnnotated(root, annot),
			})
		}
	}
	b.WriteString("== physical plan (analyzed) ==\n")
	b.WriteString(physical.ExplainAnnotated(root, annot))
	// Nested plans keep subqueries inside operator expressions; their
	// physical plans execute once per outer binding, so calls>1 here is
	// exactly the repetition unnesting removes.
	for i, sp := range collectSubplans(plan) {
		n, ok := ex.NodeFor(sp)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "\n-- subquery plan %d (evaluated per outer binding) --\n", i+1)
		b.WriteString(physical.ExplainAnnotated(n, annot))
	}
	if len(trace) > 0 {
		b.WriteString("\nrewrites:\n")
		for _, tr := range trace {
			fmt.Fprintf(&b, "  - %s\n", tr)
		}
	}
	return b.String(), nil
}

// Explain returns a textual description of the plan a strategy would
// execute: the canonical translation, the optimized logical plan, the
// physical plan the executor would run (algorithm choices and estimated
// cardinalities), and the list of applied rewrites.
func (db *DB) Explain(sql string, opts ...Option) (string, error) {
	cfg := db.newQueryConfig()
	for _, o := range opts {
		o(&cfg)
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return "", err
	}
	snap := db.cat.Snapshot()
	canonical, err := db.translatorOn(snap).Translate(stmt)
	if err != nil {
		return "", err
	}
	plan, trace, err := db.plan(snap, sql, cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", cfg.strategy)
	fmt.Fprintf(&b, "nulls: %s\n", cfg.nulls)
	fmt.Fprintf(&b, "nesting structure: %s\n\n", translate.ClassifyStructure(stmt))
	b.WriteString("== canonical plan ==\n")
	b.WriteString(algebra.Explain(canonical))
	if cfg.strategy != Canonical && cfg.strategy != S1 {
		est := stats.New(snap)
		b.WriteString("\n== optimized plan ==\n")
		b.WriteString(algebra.ExplainAnnotated(plan, func(op algebra.Op) string {
			return fmt.Sprintf("(est %.0f rows)", est.Cardinality(op))
		}))
	}
	phys, err := physical.NewPlanner(stats.New(snap)).Lower(plan)
	if err != nil {
		return "", err
	}
	b.WriteString("\n== physical plan ==\n")
	b.WriteString(physical.ExplainAnnotated(phys, func(n physical.Node) string {
		path := "row"
		if cfg.path == PathVector && physical.Vectorizable(n) {
			path = "vector"
		}
		return fmt.Sprintf("(est %.0f rows) [path=%s]", n.EstRows(), path)
	}))
	if len(trace) > 0 {
		b.WriteString("\n== applied rewrites ==\n")
		for _, tr := range trace {
			fmt.Fprintf(&b, "  - %s\n", tr)
		}
	}
	return b.String(), nil
}
