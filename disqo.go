// Package disqo is an in-memory relational query engine built to
// reproduce "Unnesting Scalar SQL Queries in the Presence of Disjunction"
// (Brantner, May, Moerkotte — ICDE 2007). It parses a SQL dialect
// covering the paper's query classes, translates it into a relational
// algebra extended with bypass operators, unnests nested query blocks —
// including the disjunctive linking and disjunctive correlation cases no
// classical technique handles — and executes the resulting DAG-shaped
// plans.
//
// Quick start:
//
//	db := disqo.Open()
//	if err := db.LoadRST(1, 1, 1); err != nil { ... }
//	res, err := db.Query(`SELECT DISTINCT * FROM r
//	    WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
//	       OR a4 > 1500`)
//
// Query strategies (see DESIGN.md §4 for how the baselines model the
// paper's anonymized commercial systems):
//
//	Unnested   — the paper's full strategy (Equivalences 1–5, default)
//	Canonical  — nested-loop evaluation of the canonical plan
//	S1         — canonical without any caching (slowest baseline)
//	S2         — OR-expansion + conjunctive unnesting only
//	S3         — canonical with rank-ordered predicate short-circuiting
//	CostBased  — estimate canonical vs. reordered vs. unnested, run the cheapest
package disqo

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/datagen"
	"disqo/internal/exec"
	"disqo/internal/faultinject"
	"disqo/internal/physical"
	"disqo/internal/rewrite"
	"disqo/internal/sqlparser"
	"disqo/internal/stats"
	"disqo/internal/translate"
	"disqo/internal/types"
)

// Value is a SQL scalar value.
type Value = types.Value

// Column defines one table column.
type Column = catalog.Column

// Re-exported column types.
const (
	TypeInt    = types.KindInt
	TypeFloat  = types.KindFloat
	TypeString = types.KindString
	TypeBool   = types.KindBool
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = types.NewInt
	// Float builds a float value.
	Float = types.NewFloat
	// String builds a string value.
	String = types.NewString
	// Bool builds a boolean value.
	Bool = types.NewBool
	// Null builds the SQL NULL.
	Null = types.Null
)

// Strategy selects how queries are optimized and evaluated.
type Strategy string

// The available strategies.
const (
	// Unnested applies the paper's full rewrite set (Eqv. 1–5).
	Unnested Strategy = "unnested"
	// Canonical evaluates the canonical nested plan, memoizing
	// uncorrelated subplans (a buffer-pool-resident inner relation).
	Canonical Strategy = "canonical"
	// S1 models the weakest commercial baseline: canonical evaluation
	// with no caching at all.
	S1 Strategy = "s1"
	// S2 models a system with OR-expansion and conjunctive unnesting but
	// no disjunctive unnesting.
	S2 Strategy = "s2"
	// S3 models a system that reorders disjuncts by rank (cheap
	// predicate first) but cannot decorrelate.
	S3 Strategy = "s3"
	// CostBased estimates the cost of the canonical, reordered and
	// unnested plans and executes the cheapest — the cost-based
	// application of the equivalences the paper's introduction calls
	// for ("some unnesting strategies do not always result in better
	// plans").
	CostBased Strategy = "costbased"
)

// Strategies lists the paper's five systems in presentation order
// (CostBased is a separate optimizer mode, not one of the compared
// systems).
func Strategies() []Strategy { return []Strategy{S1, S2, S3, Canonical, Unnested} }

// DB is an in-memory database: a catalog of tables plus query machinery.
// It is not safe for concurrent use; wrap it with your own
// synchronization if needed.
type DB struct {
	cat   *catalog.Catalog
	views map[string]*sqlparser.SelectStmt
}

// Open creates an empty database.
func Open() *DB {
	return &DB{cat: catalog.New(), views: make(map[string]*sqlparser.SelectStmt)}
}

// translator builds a statement translator aware of the DB's views.
func (db *DB) translator() *translate.Translator {
	return translate.New(db.cat).WithViews(db.views)
}

// Views lists the defined view names.
func (db *DB) Views() []string {
	out := make([]string, 0, len(db.views))
	for n := range db.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateTable defines a new table.
func (db *DB) CreateTable(name string, cols []Column) error {
	_, err := db.cat.Create(name, cols)
	return err
}

// DropTable removes a table.
func (db *DB) DropTable(name string) error { return db.cat.Drop(name) }

// Tables lists the defined table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// Insert appends rows to a table.
func (db *DB) Insert(table string, rows ...[]Value) error {
	tbl, err := db.cat.Lookup(table)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if err := tbl.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(table string) (int, error) {
	tbl, err := db.cat.Lookup(table)
	if err != nil {
		return 0, err
	}
	return tbl.Rel.Cardinality(), nil
}

// LoadRST generates the paper's synthetic R, S, T tables at the given
// scale factors (SF 1 = 10,000 rows).
func (db *DB) LoadRST(sfR, sfS, sfT float64) error {
	return datagen.LoadRST(db.cat, datagen.RSTConfig{SFR: sfR, SFS: sfS, SFT: sfT})
}

// LoadTPCH generates TPC-H tables at the given scale factor. With no
// table names it generates the five tables Query 2d touches; pass
// datagen table names (or "all") for more.
func (db *DB) LoadTPCH(sf float64, tables ...string) error {
	cfg := datagen.TPCHConfig{SF: sf}
	if len(tables) == 1 && tables[0] == "all" {
		cfg.Tables = datagen.TPCHAllTables
	} else if len(tables) > 0 {
		cfg.Tables = tables
	}
	return datagen.LoadTPCH(db.cat, cfg)
}

// queryConfig carries per-query options.
type queryConfig struct {
	strategy  Strategy
	timeout   time.Duration
	maxTuples int64
	workers   int
	metrics   bool
	tracer    Tracer
	ctx       context.Context
	fault     *faultinject.Injector
}

// Option configures a single Query or Explain call.
type Option func(*queryConfig)

// WithStrategy selects the optimization strategy (default Unnested).
func WithStrategy(s Strategy) Option {
	return func(c *queryConfig) { c.strategy = s }
}

// WithTimeout aborts evaluation after d (default: no limit). Timed-out
// queries return ErrTimeout.
func WithTimeout(d time.Duration) Option {
	return func(c *queryConfig) { c.timeout = d }
}

// WithTupleLimit aborts evaluation with ErrMemoryLimit once more than n
// tuples have been materialized (default: no limit) — a guard against
// plans whose intermediate results outgrow memory.
func WithTupleLimit(n int64) Option {
	return func(c *queryConfig) { c.maxTuples = n }
}

// WithWorkers sets the morsel-parallel worker pool size (default:
// GOMAXPROCS). Hot operators — scans, filters, both σ± streams, hash
// join build and probe, grouping — split large inputs into fixed-size
// morsels claimed by the pool; 1 forces sequential execution. Results
// are deterministic: every worker count produces byte-identical output.
func WithWorkers(n int) Option {
	return func(c *queryConfig) { c.workers = n }
}

// WithMetrics enables per-operator runtime metrics collection for the
// call; the report is available from Result.Metrics. Off by default —
// collection adds per-operator bookkeeping to execution. Analyze
// enables it implicitly.
func WithMetrics() Option {
	return func(c *queryConfig) { c.metrics = true }
}

// WithTracer streams operator open/morsel/close spans to t during
// execution (default: none). The tracer must be safe for concurrent
// use; morsel workers emit events in parallel.
func WithTracer(t Tracer) Option {
	return func(c *queryConfig) { c.tracer = t }
}

// WithContext attaches a cancellation context to the query: every
// morsel worker polls it at morsel boundaries (and in the periodic
// in-loop tick), so cancelling returns within roughly one morsel's
// worth of work with ctx.Err() wrapped in a *QueryError.
// db.QueryContext(ctx, sql) is shorthand for Query(sql,
// WithContext(ctx)).
func WithContext(ctx context.Context) Option {
	return func(c *queryConfig) { c.ctx = ctx }
}

// withFaultInjector wires a deterministic fault injector
// (internal/faultinject) into execution. Unexported on purpose: it is
// the chaos-test hook, not public API.
func withFaultInjector(fi *faultinject.Injector) Option {
	return func(c *queryConfig) { c.fault = fi }
}

// ErrTimeout is returned when a query exceeds its WithTimeout deadline.
var ErrTimeout = exec.ErrTimeout

// ErrMemoryLimit is returned when a query materializes more tuples than
// its WithTupleLimit budget.
var ErrMemoryLimit = exec.ErrMemoryLimit

// Result is a query result: column names, rows, and execution counters.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Stats counts the work performed (comparisons, tuples, subquery
	// evaluations), letting callers compare strategies analytically.
	Stats exec.Stats
	// Rewrites lists the equivalences the optimizer applied.
	Rewrites []string
	// Elapsed is the wall-clock execution time (excluding parse and
	// optimization).
	Elapsed time.Duration
	// metrics is the per-operator report, set when WithMetrics was on.
	metrics *PlanMetrics
}

// Metrics returns the per-operator runtime report, or nil unless the
// query ran with WithMetrics.
func (r *Result) Metrics() *PlanMetrics { return r.metrics }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for k := len(v); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}

// plan builds the optimized plan for a statement under a strategy.
func (db *DB) plan(sql string, cfg queryConfig) (algebra.Op, []string, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	canonical, err := db.translator().Translate(stmt)
	if err != nil {
		return nil, nil, err
	}
	switch cfg.strategy {
	case Unnested, "":
		rw := rewrite.New(db.cat, rewrite.AllCaps())
		plan, err := rw.Rewrite(canonical)
		if err != nil {
			return nil, nil, err
		}
		return plan, rw.Trace, nil
	case S2:
		rw := rewrite.New(db.cat, rewrite.Caps{Conjunctive: true, ORExpansion: true, Quantified: true})
		plan, err := rw.Rewrite(canonical)
		if err != nil {
			return nil, nil, err
		}
		return plan, rw.Trace, nil
	case S3:
		ro := rewrite.NewReorderer(db.cat)
		plan, err := ro.Rewrite(canonical)
		if err != nil {
			return nil, nil, err
		}
		var trace []string
		if ro.Applied > 0 {
			trace = []string{fmt.Sprintf("reordered %d predicates by rank", ro.Applied)}
		}
		return plan, trace, nil
	case Canonical, S1:
		return canonical, nil, nil
	case CostBased:
		return db.planCostBased(canonical)
	default:
		return nil, nil, fmt.Errorf("disqo: unknown strategy %q", cfg.strategy)
	}
}

// planCostBased compares the estimated cost of the canonical plan, the
// rank-reordered plan, and the fully unnested plan, and returns the
// cheapest.
func (db *DB) planCostBased(canonical algebra.Op) (algebra.Op, []string, error) {
	est := stats.New(db.cat)

	rw := rewrite.New(db.cat, rewrite.AllCaps())
	unnested, err := rw.Rewrite(canonical)
	if err != nil {
		return nil, nil, err
	}
	ro := rewrite.NewReorderer(db.cat)
	reordered, err := ro.Rewrite(canonical)
	if err != nil {
		return nil, nil, err
	}

	type candidate struct {
		name  string
		plan  algebra.Op
		trace []string
		cost  float64
	}
	cands := []candidate{
		{name: "canonical", plan: canonical, cost: est.PlanCost(canonical)},
		{name: "reordered", plan: reordered, cost: est.PlanCost(reordered)},
		{name: "unnested", plan: unnested, trace: rw.Trace, cost: est.PlanCost(unnested)},
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	trace := append([]string(nil), best.trace...)
	trace = append(trace, fmt.Sprintf(
		"cost-based choice: %s (canonical=%.3g, reordered=%.3g, unnested=%.3g)",
		best.name, cands[0].cost, cands[1].cost, cands[2].cost))
	return best.plan, trace, nil
}

// execOptions maps a strategy to executor options.
func execOptions(cfg queryConfig) exec.Options {
	opt := exec.Options{
		Cache:     exec.CacheAll,
		Timeout:   cfg.timeout,
		MaxTuples: cfg.maxTuples,
		Workers:   cfg.workers,
		Metrics:   cfg.metrics,
		Tracer:    cfg.tracer,
		Ctx:       cfg.ctx,
		Fault:     cfg.fault,
	}
	switch cfg.strategy {
	case S1:
		opt.Cache = exec.CacheNone
	case Canonical, S3, S2:
		// Conventional engines keep base-table pages resident (buffer
		// pool) but rebuild intermediate results per outer tuple.
		opt.Cache = exec.CacheScans
	}
	return opt
}

// Exec runs a DDL or DML statement: CREATE TABLE, DROP TABLE, or INSERT.
// It returns the number of rows affected (inserted).
func (db *DB) Exec(sql string) (int, error) {
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return 0, err
	}
	switch x := stmt.(type) {
	case *sqlparser.CreateTableStmt:
		cols := make([]Column, len(x.Columns))
		for i, c := range x.Columns {
			var kind types.Kind
			switch c.Type {
			case "INTEGER":
				kind = types.KindInt
			case "DOUBLE":
				kind = types.KindFloat
			case "VARCHAR":
				kind = types.KindString
			case "BOOLEAN":
				kind = types.KindBool
			default:
				return 0, fmt.Errorf("disqo: unknown column type %q", c.Type)
			}
			cols[i] = Column{Name: c.Name, Type: kind}
		}
		return 0, db.CreateTable(x.Name, cols)
	case *sqlparser.DropTableStmt:
		return 0, db.DropTable(x.Name)
	case *sqlparser.InsertStmt:
		tbl, err := db.cat.Lookup(x.Table)
		if err != nil {
			return 0, err
		}
		for _, row := range x.Rows {
			vals := make([]Value, len(row))
			for i, lit := range row {
				switch v := lit.(type) {
				case *sqlparser.IntLit:
					vals[i] = Int(v.Val)
				case *sqlparser.FloatLit:
					vals[i] = Float(v.Val)
				case *sqlparser.StringLit:
					vals[i] = String(v.Val)
				case *sqlparser.BoolLit:
					vals[i] = Bool(v.Val)
				case *sqlparser.NullLit:
					vals[i] = Null()
				default:
					return 0, fmt.Errorf("disqo: INSERT values must be literals, got %s", lit)
				}
			}
			if err := tbl.Insert(vals); err != nil {
				return 0, err
			}
		}
		return len(x.Rows), nil
	case *sqlparser.CreateViewStmt:
		key := strings.ToLower(x.Name)
		if _, err := db.cat.Lookup(key); err == nil {
			return 0, fmt.Errorf("disqo: a table named %q already exists", x.Name)
		}
		if _, dup := db.views[key]; dup {
			return 0, fmt.Errorf("disqo: view %q already exists", x.Name)
		}
		// Validate the body now so a broken view fails at definition time.
		probe := Open()
		probe.cat = db.cat
		probe.views = db.views
		if _, err := probe.translator().Translate(x.Body); err != nil {
			return 0, fmt.Errorf("disqo: invalid view body: %w", err)
		}
		db.views[key] = x.Body
		return 0, nil
	case *sqlparser.DropViewStmt:
		key := strings.ToLower(x.Name)
		if _, ok := db.views[key]; !ok {
			return 0, fmt.Errorf("disqo: no view %q", x.Name)
		}
		delete(db.views, key)
		return 0, nil
	case *sqlparser.DeleteStmt:
		return db.execDelete(x)
	case *sqlparser.UpdateStmt:
		return db.execUpdate(x)
	case *sqlparser.SelectStmt:
		return 0, fmt.Errorf("disqo: use Query for SELECT statements")
	default:
		return 0, fmt.Errorf("disqo: unsupported statement %T", stmt)
	}
}

// matchingRows evaluates a WHERE predicate over one table by running the
// equivalent SELECT through the full optimizer (so subqueries in DML
// predicates are unnested too) and returns the set of matching tuples.
func (db *DB) matchingRows(table string, where sqlparser.Expr) (map[uint64][][]Value, error) {
	sel := &sqlparser.SelectStmt{
		Star:  true,
		From:  []sqlparser.TableRef{{Table: table}},
		Where: where,
	}
	plan, err := db.translator().Translate(sel)
	if err != nil {
		return nil, err
	}
	rw := rewrite.New(db.cat, rewrite.AllCaps())
	plan, err = rw.Rewrite(plan)
	if err != nil {
		return nil, err
	}
	ex := exec.New(db.cat, exec.Options{Cache: exec.CacheAll})
	rel, err := ex.Run(plan)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][][]Value, rel.Cardinality())
	for _, t := range rel.Tuples {
		h := types.HashTuple(t)
		out[h] = append(out[h], t)
	}
	return out, nil
}

func rowMatches(set map[uint64][][]Value, row []Value) bool {
	for _, m := range set[types.HashTuple(row)] {
		if types.TuplesIdentical(m, row) {
			return true
		}
	}
	return false
}

// execDelete removes the rows satisfying the predicate. Matching is
// value-based (the relation is a bag): identical duplicates live or die
// together, which coincides with SQL's semantics for a value-based
// predicate.
func (db *DB) execDelete(x *sqlparser.DeleteStmt) (int, error) {
	tbl, err := db.cat.Lookup(x.Table)
	if err != nil {
		return 0, err
	}
	if x.Where == nil {
		n := tbl.Rel.Cardinality()
		tbl.Rel.Tuples = nil
		tbl.BulkLoad(nil) // refresh statistics
		return n, nil
	}
	matching, err := db.matchingRows(x.Table, x.Where)
	if err != nil {
		return 0, err
	}
	kept := tbl.Rel.Tuples[:0:0]
	deleted := 0
	for _, row := range tbl.Rel.Tuples {
		if rowMatches(matching, row) {
			deleted++
			continue
		}
		kept = append(kept, row)
	}
	tbl.Rel.Tuples = kept
	tbl.BulkLoad(nil) // refresh statistics
	return deleted, nil
}

// execUpdate rewrites the rows satisfying the predicate, evaluating SET
// expressions against the pre-update row (standard SQL semantics).
func (db *DB) execUpdate(x *sqlparser.UpdateStmt) (int, error) {
	tbl, err := db.cat.Lookup(x.Table)
	if err != nil {
		return 0, err
	}
	// Resolve SET targets and translate value expressions in the table's
	// scope (subqueries allowed; they evaluate canonically per row).
	colIdx := make([]int, len(x.Sets))
	valExprs := make([]algebra.Expr, len(x.Sets))
	for i, a := range x.Sets {
		idx := -1
		for j, c := range tbl.Columns {
			if strings.EqualFold(c.Name, a.Column) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("disqo: no column %q in %s", a.Column, x.Table)
		}
		colIdx[i] = idx
		ve, err := db.translator().TranslateTableExpr(x.Table, a.Value)
		if err != nil {
			return 0, err
		}
		valExprs[i] = ve
	}

	var matching map[uint64][][]Value
	if x.Where != nil {
		matching, err = db.matchingRows(x.Table, x.Where)
		if err != nil {
			return 0, err
		}
	}
	ex := exec.New(db.cat, exec.Options{Cache: exec.CacheAll})
	updated := 0
	newRows := make([][]Value, len(tbl.Rel.Tuples))
	for i, row := range tbl.Rel.Tuples {
		if x.Where != nil && !rowMatches(matching, row) {
			newRows[i] = row
			continue
		}
		env := exec.Bind(nil, tbl.Rel.Schema, row)
		next := append([]Value(nil), row...)
		for k, ve := range valExprs {
			v, err := ex.EvalExpr(ve, env)
			if err != nil {
				return updated, err
			}
			next[colIdx[k]] = v
		}
		newRows[i] = next
		updated++
	}
	tbl.Rel.Tuples = newRows
	tbl.BulkLoad(nil) // refresh statistics
	return updated, nil
}

// Query parses, optimizes and executes a SQL statement. Execution
// failures — timeout, tuple budget, cancellation, a recovered panic —
// are returned as a *QueryError; parse and planning errors are not
// wrapped.
func (db *DB) Query(sql string, opts ...Option) (*Result, error) {
	cfg := queryConfig{strategy: Unnested}
	for _, o := range opts {
		o(&cfg)
	}
	plan, trace, err := db.plan(sql, cfg)
	if err != nil {
		return nil, err
	}
	ex := exec.New(db.cat, execOptions(cfg))
	start := time.Now()
	rel, err := ex.Run(plan)
	if err != nil {
		return nil, wrapQueryError(sql, cfg, time.Since(start), err)
	}
	res := &Result{
		Columns:  append([]string(nil), rel.Schema.Attrs()...),
		Rows:     rel.Tuples,
		Stats:    ex.Stats(),
		Rewrites: trace,
		Elapsed:  time.Since(start),
	}
	if cfg.metrics {
		if root, err := ex.Plan(plan); err == nil {
			res.metrics = newPlanMetrics(root, subplanNodes(ex, plan), ex.NodeMetrics())
		}
	}
	return res, nil
}

// QueryContext is Query with cancellation: it runs sql until ctx is
// done, then aborts within roughly one morsel's worth of work and
// returns ctx.Err() (context.Canceled or context.DeadlineExceeded)
// wrapped in a *QueryError. An explicit WithContext in opts overrides
// ctx.
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...Option) (*Result, error) {
	return db.Query(sql, append([]Option{WithContext(ctx)}, opts...)...)
}

// subplanNodes resolves the physical plans of the subqueries the
// executor evaluated from operator expressions.
func subplanNodes(ex *exec.Executor, plan algebra.Op) []physical.Node {
	var subs []physical.Node
	for _, sp := range collectSubplans(plan) {
		if n, ok := ex.NodeFor(sp); ok {
			subs = append(subs, n)
		}
	}
	return subs
}

// Analyze executes the statement and returns the executed physical plan
// annotated per operator with estimated vs. actual cardinality, call
// counts, memo hits, and evaluation time (EXPLAIN ANALYZE). calls>1
// shows the per-outer-tuple re-evaluation that canonical nested plans
// pay and unnested plans avoid; every printed counter except time= is
// byte-identical for any worker count.
func (db *DB) Analyze(sql string, opts ...Option) (string, error) {
	cfg := queryConfig{strategy: Unnested}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.metrics = true
	plan, trace, err := db.plan(sql, cfg)
	if err != nil {
		return "", err
	}
	ex := exec.New(db.cat, execOptions(cfg))
	start := time.Now()
	rel, err := ex.Run(plan)
	if err != nil {
		return "", wrapQueryError(sql, cfg, time.Since(start), err)
	}
	elapsed := time.Since(start)
	root, err := ex.Plan(plan)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s   rows: %d   elapsed: %s\n",
		cfg.strategy, rel.Cardinality(), elapsed.Round(time.Microsecond))
	st := ex.Stats()
	fmt.Fprintf(&b, "comparisons: %d   tuples: %d   subquery evals: %d   peak resident: %d\n\n",
		st.Comparisons, st.TuplesOut, st.SubqueryEvals, st.PeakTuples)
	annot := analyzeAnnot(ex.NodeMetrics())
	b.WriteString("== physical plan (analyzed) ==\n")
	b.WriteString(physical.ExplainAnnotated(root, annot))
	// Nested plans keep subqueries inside operator expressions; their
	// physical plans execute once per outer binding, so calls>1 here is
	// exactly the repetition unnesting removes.
	for i, sp := range collectSubplans(plan) {
		n, ok := ex.NodeFor(sp)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "\n-- subquery plan %d (evaluated per outer binding) --\n", i+1)
		b.WriteString(physical.ExplainAnnotated(n, annot))
	}
	if len(trace) > 0 {
		b.WriteString("\nrewrites:\n")
		for _, tr := range trace {
			fmt.Fprintf(&b, "  - %s\n", tr)
		}
	}
	return b.String(), nil
}

// Explain returns a textual description of the plan a strategy would
// execute: the canonical translation, the optimized logical plan, the
// physical plan the executor would run (algorithm choices and estimated
// cardinalities), and the list of applied rewrites.
func (db *DB) Explain(sql string, opts ...Option) (string, error) {
	cfg := queryConfig{strategy: Unnested}
	for _, o := range opts {
		o(&cfg)
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return "", err
	}
	canonical, err := db.translator().Translate(stmt)
	if err != nil {
		return "", err
	}
	plan, trace, err := db.plan(sql, cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", cfg.strategy)
	fmt.Fprintf(&b, "nesting structure: %s\n\n", translate.ClassifyStructure(stmt))
	b.WriteString("== canonical plan ==\n")
	b.WriteString(algebra.Explain(canonical))
	if cfg.strategy != Canonical && cfg.strategy != S1 {
		est := stats.New(db.cat)
		b.WriteString("\n== optimized plan ==\n")
		b.WriteString(algebra.ExplainAnnotated(plan, func(op algebra.Op) string {
			return fmt.Sprintf("(est %.0f rows)", est.Cardinality(op))
		}))
	}
	phys, err := physical.NewPlanner(stats.New(db.cat)).Lower(plan)
	if err != nil {
		return "", err
	}
	b.WriteString("\n== physical plan ==\n")
	b.WriteString(physical.Explain(phys))
	if len(trace) > 0 {
		b.WriteString("\n== applied rewrites ==\n")
		for _, tr := range trace {
			fmt.Fprintf(&b, "  - %s\n", tr)
		}
	}
	return b.String(), nil
}
