package disqo

// Workload-telemetry suite: the acceptance test drives a mixed workload
// (the Fig. 2/3 golden shapes under several strategies, cold and
// cached, plus one execution error and one admission shed) while the
// test itself keeps driver-side ground truth, then requires
// db.WorkloadStats() to match it exactly — and the Prometheus endpoint
// to serve the same counters. The rest pins the concurrent-registry
// identity, the disabled-telemetry allocation golden, ResetStats
// semantics, the slow-query log, and the debug listener's exposition
// well-formedness. Internal test (package disqo) to reuse chaosDBWith,
// gateDB, and blockTracer.

import (
	"encoding/json"
	"errors"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"disqo/internal/testutil"
)

// latBucket is the log2 bucket index a duration lands in — the
// granularity at which the histogram remembers latencies, and therefore
// the tolerance every percentile assertion uses.
func latBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// stmtTruth is the driver-side ground truth for one statement.
type stmtTruth struct {
	calls, errors, sheds, rows  int64
	planHits, resultHits, waits int64
	byStrategy                  map[string]int64
}

func TestWorkloadStatsGroundTruth(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := chaosDBWith(t, 300, false,
		WithMaxConcurrent(1), WithMaxQueued(-1), WithDebugAddr("127.0.0.1:0"))
	defer db.Close()

	truth := make(map[string]*stmtTruth)
	stmt := func(sql string) *stmtTruth {
		k := normalizeSQL(sql)
		if truth[k] == nil {
			truth[k] = &stmtTruth{byStrategy: make(map[string]int64)}
		}
		return truth[k]
	}
	var (
		wantQueries, wantErrors, wantSheds, wantRows int64
		wantAdmitted                                 int64
		walls                                        []time.Duration
	)

	// Phase 1 — the golden shapes, each strategy twice: the first run
	// executes (admitted through the gate, fills both cache tiers), the
	// second is a plan hit + result-cache hit that never touches the
	// gate.
	shapes := []struct {
		sql   string
		strat Strategy
	}{
		{chaosQ1, Canonical}, // Fig. 2(a)
		{chaosQ1, S2},        // Fig. 2(b)
		{chaosQ1, Unnested},  // Fig. 2(c)
		{chaosQ2, Canonical}, // Fig. 3(a)
		{chaosQ2, Unnested},  // Fig. 3(b)
	}
	for _, sh := range shapes {
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			res, err := db.Query(sh.sql, WithStrategy(sh.strat))
			wall := time.Since(start)
			if err != nil {
				t.Fatalf("%s/%s rep %d: %v", sh.sql[:20], sh.strat, rep, err)
			}
			st := stmt(sh.sql)
			st.calls++
			st.rows += int64(len(res.Rows))
			st.byStrategy[string(sh.strat)]++
			wantQueries++
			wantRows += int64(len(res.Rows))
			walls = append(walls, wall)
			if rep == 0 {
				wantAdmitted++
			} else {
				st.planHits++
				st.resultHits++
			}
		}
	}

	// Phase 2 — one execution error: a statement the cache has never
	// seen, run under a tuple budget nothing fits in. It fails inside
	// the executor, after admission, so it counts as admitted + error.
	errSQL := chaosQ1 + ` AND a3 >= 0`
	if _, err := db.Query(errSQL, WithStrategy(Unnested), WithTupleLimit(1)); err == nil {
		t.Fatal("tuple-limited query unexpectedly succeeded")
	}
	stmt(errSQL).calls++
	stmt(errSQL).errors++
	stmt(errSQL).byStrategy[string(Unnested)]++
	wantQueries++
	wantErrors++
	wantAdmitted++

	// Phase 3 — one shed: a traced query (tracers bypass the result
	// cache) parks mid-execution holding the DB's only slot; with a
	// zero-length queue the next cold statement is rejected with
	// ErrOverloaded at the gate.
	bt := newBlockTracer(false)
	tracerDone := make(chan struct{})
	var tracerWall time.Duration
	var tracerRows int64
	go func() {
		defer close(tracerDone)
		start := time.Now()
		res, err := db.Query(chaosQ1, WithStrategy(Unnested), WithTracer(bt))
		tracerWall = time.Since(start)
		if err != nil {
			t.Errorf("tracer query: %v", err)
			return
		}
		tracerRows = int64(len(res.Rows))
	}()
	<-bt.started
	shedSQL := chaosQ2 + ` OR a4 > 1501`
	if _, err := db.Query(shedSQL, WithStrategy(Unnested)); !errors.Is(err, ErrOverloaded) {
		close(bt.release)
		<-tracerDone
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	stmt(shedSQL).calls++
	stmt(shedSQL).sheds++
	stmt(shedSQL).byStrategy[string(Unnested)]++
	wantQueries++
	wantSheds++
	close(bt.release)
	<-tracerDone
	st := stmt(chaosQ1)
	st.calls++
	st.rows += tracerRows
	st.planHits++ // the tracer reused the cached unnested plan
	st.byStrategy[string(Unnested)]++
	wantQueries++
	wantRows += tracerRows
	wantAdmitted++
	walls = append(walls, tracerWall)

	ws := db.WorkloadStats()
	if !ws.Enabled {
		t.Fatal("telemetry reported disabled")
	}
	if ws.Queries != wantQueries || ws.Errors != wantErrors || ws.Sheds != wantSheds || ws.RowsReturned != wantRows {
		t.Fatalf("global counters: got q=%d e=%d s=%d r=%d, want q=%d e=%d s=%d r=%d",
			ws.Queries, ws.Errors, ws.Sheds, ws.RowsReturned,
			wantQueries, wantErrors, wantSheds, wantRows)
	}
	if got := int64(len(walls)); ws.Latency.Count != got {
		t.Fatalf("latency count: got %d samples, want %d successes", ws.Latency.Count, got)
	}
	if ws.Admission.Admitted != wantAdmitted || ws.Admission.Shed != wantSheds {
		t.Fatalf("admission: got admitted=%d shed=%d, want admitted=%d shed=%d",
			ws.Admission.Admitted, ws.Admission.Shed, wantAdmitted, wantSheds)
	}
	if ws.DroppedStatements != 0 {
		t.Fatalf("dropped statements: got %d, want 0", ws.DroppedStatements)
	}

	// Per-statement registry must match the driver's book exactly.
	if len(ws.Statements) != len(truth) {
		t.Fatalf("registry size: got %d statements, want %d", len(ws.Statements), len(truth))
	}
	for _, got := range ws.Statements {
		want := truth[got.SQL]
		if want == nil {
			t.Fatalf("unexpected statement in registry: %q", got.SQL)
		}
		if got.Calls != want.calls || got.Errors != want.errors || got.Sheds != want.sheds ||
			got.Rows != want.rows || got.PlanHits != want.planHits ||
			got.ResultHits != want.resultHits || got.FlightWaits != want.waits {
			t.Errorf("statement %q: got calls=%d errs=%d sheds=%d rows=%d plan=%d result=%d waits=%d, want calls=%d errs=%d sheds=%d rows=%d plan=%d result=%d waits=%d",
				got.SQL, got.Calls, got.Errors, got.Sheds, got.Rows, got.PlanHits, got.ResultHits, got.FlightWaits,
				want.calls, want.errors, want.sheds, want.rows, want.planHits, want.resultHits, want.waits)
		}
		for strat, n := range want.byStrategy {
			if got.ByStrategy[strat] != n {
				t.Errorf("statement %q strategy %s: got %d, want %d", got.SQL, strat, got.ByStrategy[strat], n)
			}
		}
	}

	// Percentiles must land within one log2 bucket of the true wall
	// times (the wall is measured around the API call, the histogram
	// inside it, so a boundary sample may differ by one bucket).
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	for _, q := range []struct {
		p    float64
		est  time.Duration
		name string
	}{{0.50, ws.Latency.P50, "p50"}, {0.95, ws.Latency.P95, "p95"}, {0.99, ws.Latency.P99, "p99"}} {
		idx := int(float64(len(walls))*q.p+0.999999) - 1
		if idx < 0 {
			idx = 0
		}
		trueQ := walls[idx]
		if d := latBucket(q.est) - latBucket(trueQ); d < -1 || d > 1 {
			t.Errorf("%s: estimate %v (bucket %d) vs true %v (bucket %d): off by more than one log2 bucket",
				q.name, q.est, latBucket(q.est), trueQ, latBucket(trueQ))
		}
	}

	// The Prometheus endpoint must serve the same counters.
	addr, err := db.DebugAddr()
	if err != nil {
		t.Fatal(err)
	}
	families, samples := scrapeMetrics(t, addr)
	for name, want := range map[string]float64{
		"disqo_queries_total":        float64(wantQueries),
		"disqo_query_errors_total":   float64(wantErrors),
		"disqo_queries_shed_total":   float64(wantSheds),
		"disqo_rows_returned_total":  float64(wantRows),
		"disqo_admission_shed_total": float64(wantSheds),
	} {
		if got, ok := samples[name]; !ok || got != want {
			t.Errorf("metric %s: got %v (present=%v), want %v", name, got, ok, want)
		}
	}
	if typ := families["disqo_query_duration_seconds"]; typ != "histogram" {
		t.Errorf("disqo_query_duration_seconds: got type %q, want histogram", typ)
	}
	var stmtCalls float64
	for line, v := range samples {
		if strings.HasPrefix(line, "disqo_statement_calls_total{") {
			stmtCalls += v
		}
	}
	if stmtCalls != float64(wantQueries) {
		t.Errorf("statement calls series sum: got %v, want %d", stmtCalls, wantQueries)
	}
}

// TestTelemetryConcurrentSessions races 8 sessions over one statement
// and requires the registry to keep a single identity with exact
// totals, whichever mix of executions, cache hits, and single-flight
// waits the race produced.
func TestTelemetryConcurrentSessions(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 200)
	const sessions, perSession = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSession; j++ {
				if _, err := db.Query(gateQuery); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	const total = sessions * perSession
	ws := db.WorkloadStats()
	if ws.Queries != total || ws.Errors != 0 || ws.Sheds != 0 {
		t.Fatalf("got q=%d e=%d s=%d, want q=%d e=0 s=0", ws.Queries, ws.Errors, ws.Sheds, total)
	}
	if ws.RowsReturned != total*200 {
		t.Fatalf("rows: got %d, want %d", ws.RowsReturned, total*200)
	}
	if len(ws.Statements) != 1 {
		t.Fatalf("registry: got %d statements, want 1 identity", len(ws.Statements))
	}
	st := ws.Statements[0]
	if st.Calls != total || st.Latency.Count != total {
		t.Fatalf("statement: got calls=%d latency-samples=%d, want %d of each", st.Calls, st.Latency.Count, total)
	}
	// Every call was served somehow: execution, cached result, or a
	// single-flight wait; the split is racy but the sum is not.
	executions := st.Calls - st.ResultHits - st.FlightWaits
	if executions < 1 {
		t.Fatalf("accounting: %d executions from calls=%d result=%d waits=%d",
			executions, st.Calls, st.ResultHits, st.FlightWaits)
	}
	var byStrat int64
	for _, n := range st.ByStrategy {
		byStrat += n
	}
	if byStrat != total {
		t.Fatalf("by-strategy split sums to %d, want %d", byStrat, total)
	}
}

// TestDisabledTelemetryWarmHitAllocs is the allocation golden for the
// hot path: with telemetry disabled, a warm result-cache hit must cost
// no more than the pre-telemetry baseline of 13 allocations — i.e. the
// disabled layer adds zero. The enabled layer's own zero-allocation
// guarantee is pinned in the telemetry package; here we also bound the
// enabled path to the same golden, which holds because Observe only
// touches pre-built map entries and atomics.
func TestDisabledTelemetryWarmHitAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation goldens are meaningless under the race detector")
	}
	const baseline = 13
	for _, tc := range []struct {
		name string
		opts []OpenOption
	}{
		{"disabled", []OpenOption{WithoutTelemetry()}},
		{"enabled", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := gateDB(t, 64, tc.opts...)
			for i := 0; i < 3; i++ { // warm the plan and result tiers
				if _, err := db.Query(gateQuery); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := db.Query(gateQuery); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > baseline {
				t.Fatalf("warm hit allocates %.0f, budget %d", allocs, baseline)
			}
		})
	}
}

// TestResetStats: counters go to zero, cached entries and gauges stay.
func TestResetStats(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 50)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(gateQuery); err != nil {
			t.Fatal(err)
		}
	}
	before := db.WorkloadStats()
	if before.Queries != 3 || before.Cache.Result.Hits == 0 || before.Admission.Admitted == 0 {
		t.Fatalf("workload not registered before reset: %+v", before)
	}
	entries := before.Cache.Result.Entries

	db.ResetStats()
	ws := db.WorkloadStats()
	if ws.Queries != 0 || ws.Errors != 0 || ws.RowsReturned != 0 || ws.Latency.Count != 0 ||
		len(ws.Statements) != 0 || ws.SlowTotal != 0 {
		t.Fatalf("workload counters survived reset: %+v", ws)
	}
	if ws.Admission.Admitted != 0 || ws.Admission.Shed != 0 || ws.Admission.QueueWait != 0 {
		t.Fatalf("admission counters survived reset: %+v", ws.Admission)
	}
	if ws.Cache.Result.Hits != 0 || ws.Cache.Plan.Hits != 0 {
		t.Fatalf("cache counters survived reset: %+v", ws.Cache)
	}
	if ws.Cache.Result.Entries != entries {
		t.Fatalf("reset evicted entries: got %d, want %d", ws.Cache.Result.Entries, entries)
	}

	// The surviving entry still serves: the next query is a warm hit.
	if _, err := db.Query(gateQuery); err != nil {
		t.Fatal(err)
	}
	after := db.WorkloadStats()
	if after.Queries != 1 || after.Cache.Result.Hits != 1 {
		t.Fatalf("post-reset query: got queries=%d result-hits=%d, want 1/1", after.Queries, after.Cache.Result.Hits)
	}
}

// TestSlowQueryLog: an armed 1ns threshold captures every executed
// query with its ANALYZE-annotated plan attached.
func TestSlowQueryLog(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 50, WithSlowQueryThreshold(time.Nanosecond))
	if _, err := db.Query(gateQuery); err != nil {
		t.Fatal(err)
	}
	ws := db.WorkloadStats()
	if ws.SlowTotal < 1 || len(ws.SlowQueries) < 1 {
		t.Fatalf("slow log empty after armed query: total=%d entries=%d", ws.SlowTotal, len(ws.SlowQueries))
	}
	q := ws.SlowQueries[len(ws.SlowQueries)-1] // oldest = the execution
	if q.SQL != normalizeSQL(gateQuery) {
		t.Fatalf("slow entry SQL: got %q", q.SQL)
	}
	if q.Strategy != string(Unnested) || q.Elapsed <= 0 || q.Rows != 50 {
		t.Fatalf("slow entry: %+v", q)
	}
	if !strings.Contains(q.Plan, "Scan") {
		t.Fatalf("slow entry lacks an annotated plan: %q", q.Plan)
	}
}

// TestDebugEndpoint exercises the opt-in listener: well-formed
// exposition (every sample's family is TYPE-declared), monotone
// counters across scrapes, JSON /statz, a live pprof index, bind-error
// surfacing, and idempotent Close.
func TestDebugEndpoint(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 50, WithDebugAddr("127.0.0.1:0"))
	defer db.Close()
	addr, err := db.DebugAddr()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := db.Query(gateQuery); err != nil {
		t.Fatal(err)
	}
	_, first := scrapeMetrics(t, addr)
	for i := 0; i < 4; i++ {
		if _, err := db.Query(gateQuery); err != nil {
			t.Fatal(err)
		}
	}
	_, second := scrapeMetrics(t, addr)
	for key, v1 := range first {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		if v2, ok := second[key]; ok && v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", key, v1, v2)
		}
	}
	if got, want := second["disqo_queries_total"], first["disqo_queries_total"]+4; got != want {
		t.Errorf("disqo_queries_total: got %v, want %v", got, want)
	}

	var statz map[string]any
	body := httpGet(t, "http://"+addr+"/statz")
	if err := json.Unmarshal(body, &statz); err != nil {
		t.Fatalf("/statz is not JSON: %v", err)
	}
	if statz["enabled"] != true {
		t.Fatalf("/statz enabled: %v", statz["enabled"])
	}
	if idx := httpGet(t, "http://"+addr+"/debug/pprof/"); !strings.Contains(string(idx), "goroutine") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}

	// A second DB on the same port records the bind error for DebugAddr.
	db2, _ := Open(WithDebugAddr(addr))
	if _, err := db2.DebugAddr(); err == nil {
		t.Fatal("expected bind error on occupied port")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still serving after Close")
	}
}

// scrapeMetrics fetches and parses a Prometheus text exposition,
// failing the test on any structural violation: sample lines must
// parse, and every sample's family must carry a preceding # TYPE.
func scrapeMetrics(t *testing.T, addr string) (families map[string]string, samples map[string]float64) {
	t.Helper()
	body := httpGet(t, "http://"+addr+"/metrics")
	families = make(map[string]string)
	samples = make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				families[f[2]] = f[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suf); ok && families[cut] == "histogram" {
				base = cut
				break
			}
		}
		if _, ok := families[base]; !ok {
			t.Fatalf("sample %q has no # TYPE declaration", line)
		}
		samples[key] = v
	}
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	return families, samples
}

// httpGet fetches a URL over a keep-alive-free transport so the debug
// server owns no idle connections when the leak check runs.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	tr := &http.Transport{DisableKeepAlives: true}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}
