package disqo

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"disqo/internal/exec"
	"disqo/internal/wire"
)

// Client is a connection to a disqod server (cmd/disqod), speaking the
// newline-delimited JSON protocol in internal/wire. It mirrors the
// embedded API where that makes sense — Query returns the same *Result
// a local DB would, with rows that round-trip byte-identically — and
// adds the two things a network client needs: typed server errors that
// still satisfy errors.Is against the engine's sentinels
// (ErrOverloaded, ErrTimeout, ...), and transparent reconnection.
//
// Reconnection uses Retry under the client's RetryPolicy: when a read
// path (Query, Ping, Prepare) fails at the transport layer, the client
// redials, replays its session state (defaults and prepared
// statements — the server-side session died with the connection), and
// retries. Exec is deliberately at-most-once: a write whose response
// was lost may or may not have applied, and silently re-sending it
// could double-apply; the caller gets ErrConnection and decides.
//
// A Client serializes its requests; share one per goroutine or accept
// the serialization.
type Client struct {
	addr string
	opts clientOptions

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	nextID uint64
	closed bool

	// Session state replayed after a reconnect.
	strategy  string
	path      string
	nulls     string
	timeoutMS int64
	prepared  map[string]string
}

// ErrConnection is the transport-failure sentinel: dial, write, or
// read on the server connection failed (including a server that
// vanished mid-request). Wrapped errors carry the cause. Read-path
// calls retry these internally per the client's RetryPolicy before
// surfacing one.
var ErrConnection = errors.New("disqo: client connection failure")

// maxResponseFrame bounds one response line; results are unbounded in
// principle, so this is a sanity cap, not a protocol limit.
const maxResponseFrame = 1 << 30

type clientOptions struct {
	dialTimeout    time.Duration
	requestTimeout time.Duration
	retry          RetryPolicy
}

// ClientOption configures Dial.
type ClientOption func(*clientOptions)

// WithClientDialTimeout bounds each dial attempt (default 5s).
func WithClientDialTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.dialTimeout = d }
}

// WithClientRequestTimeout sets a default per-request timeout, applied
// when the call's context carries no deadline. It bounds both the
// server-side execution (sent as the request's timeout) and the
// client-side wait. 0 (the default) means unbounded.
func WithClientRequestTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.requestTimeout = d }
}

// WithClientRetry sets the transport-failure retry policy (attempts
// and backoff shape; the retry classifier is fixed to ErrConnection).
// The default is DefaultRetryPolicy.
func WithClientRetry(p RetryPolicy) ClientOption {
	return func(o *clientOptions) { o.retry = p }
}

// Dial connects to a disqod server. The returned client reconnects on
// transport failures; Close releases it.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	o := clientOptions{
		dialTimeout: 5 * time.Second,
		retry:       DefaultRetryPolicy(),
	}
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{addr: addr, opts: o, prepared: make(map[string]string)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// ServerError is a typed failure reported by the server. It satisfies
// errors.Is against the engine's sentinels — errors.Is(err,
// disqo.ErrOverloaded) works the same for a remote query as a local
// one — and keeps the failing node attribution a *QueryError would
// carry.
type ServerError struct {
	// Kind is the wire error kind ("overloaded", "timeout", ...).
	Kind    string
	Message string
	// Node and Op attribute an execution failure to a physical plan
	// node, when the server could; Node is 0 with Op "" otherwise.
	Node int
	Op   string
	// Strategy is the strategy that was executing, when known.
	Strategy string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("disqo: server error [%s]: %s", e.Kind, e.Message)
}

// Is maps wire kinds back onto the engine's sentinel errors, so
// errors.Is works across the network boundary.
func (e *ServerError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Kind == wire.KindOverloaded
	case ErrClosed:
		return e.Kind == wire.KindClosed
	case ErrTimeout:
		return e.Kind == wire.KindTimeout
	case context.DeadlineExceeded:
		return e.Kind == wire.KindTimeout
	case context.Canceled:
		return e.Kind == wire.KindCanceled
	case ErrMemoryLimit: // == ErrTupleLimit
		return e.Kind == wire.KindMemory
	case ErrWALSealed:
		return e.Kind == wire.KindSealed
	}
	return false
}

// ServerStatus is a ping response; see Client.Ping.
type ServerStatus struct {
	// Role is "writer" or "replica".
	Role     string
	Draining bool
	Sessions int
	Conns    int
	// AppliedLSN and Staleness describe a replica's position: last WAL
	// record applied, and time since the writer was last heard from.
	AppliedLSN uint64
	Staleness  time.Duration
}

// Query executes a SELECT on the server. The result's rows are
// byte-identical to what the same query run against an embedded DB
// would return.
func (c *Client) Query(sql string) (*Result, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext is Query with cancellation: a context deadline becomes
// the request's server-side timeout, and cancellation tears the
// connection down, which aborts the server-side query within one
// morsel (the server watches the socket while executing).
func (c *Client) QueryContext(ctx context.Context, sql string) (*Result, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpQuery, SQL: sql}, true)
	if err != nil {
		return nil, err
	}
	return resultFrom(resp), nil
}

// QueryPrepared executes a statement previously registered with
// Prepare.
func (c *Client) QueryPrepared(ctx context.Context, name string) (*Result, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpQuery, Name: name}, true)
	if err != nil {
		return nil, err
	}
	return resultFrom(resp), nil
}

// Exec runs a DML/DDL statement and returns rows affected. Exec never
// retries transport failures: a lost response leaves the statement's
// fate unknown, and the caller — not the client — must decide whether
// re-sending is safe.
func (c *Client) Exec(sql string) (int, error) {
	resp, err := c.do(context.Background(), &wire.Request{Op: wire.OpExec, SQL: sql}, false)
	if err != nil {
		return 0, err
	}
	return resp.Affected, nil
}

// Prepare registers sql under name in the server session (and locally,
// so a reconnect re-registers it).
func (c *Client) Prepare(name, sql string) error {
	_, err := c.do(context.Background(), &wire.Request{Op: wire.OpPrepare, Name: name, SQL: sql}, true)
	if err == nil {
		c.mu.Lock()
		c.prepared[name] = sql
		c.mu.Unlock()
	}
	return err
}

// ClosePrepared forgets a prepared statement.
func (c *Client) ClosePrepared(name string) error {
	c.mu.Lock()
	delete(c.prepared, name)
	c.mu.Unlock()
	_, err := c.do(context.Background(), &wire.Request{Op: wire.OpClose, Name: name}, true)
	return err
}

// SetStrategy makes s the session's default evaluation strategy.
func (c *Client) SetStrategy(s Strategy) error {
	return c.set(&wire.Request{Op: wire.OpSet, Strategy: string(s)}, func() { c.strategy = string(s) })
}

// SetExecutionPath makes path ("row" or "vector") the session default.
func (c *Client) SetExecutionPath(path string) error {
	return c.set(&wire.Request{Op: wire.OpSet, Path: path}, func() { c.path = path })
}

// SetNullMode makes m the session's default null semantics: "3vl"
// (SQL three-valued, the server default) or "2vl" (comparisons with
// NULL are false).
func (c *Client) SetNullMode(m NullMode) error {
	return c.set(&wire.Request{Op: wire.OpSet, Nulls: m.String()}, func() { c.nulls = m.String() })
}

// SetTimeout makes d the session's default per-request timeout; 0
// clears it.
func (c *Client) SetTimeout(d time.Duration) error {
	ms := d.Milliseconds()
	if d > 0 && ms == 0 {
		ms = 1
	}
	if d <= 0 {
		ms = -1
	}
	return c.set(&wire.Request{Op: wire.OpSet, TimeoutMS: ms}, func() { c.timeoutMS = max(ms, 0) })
}

func (c *Client) set(req *wire.Request, commit func()) error {
	_, err := c.do(context.Background(), req, true)
	if err == nil {
		c.mu.Lock()
		commit()
		c.mu.Unlock()
	}
	return err
}

// Ping reports the server's role, drain state, and session gauges.
func (c *Client) Ping(ctx context.Context) (*ServerStatus, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpPing}, true)
	if err != nil {
		return nil, err
	}
	if resp.Server == nil {
		return nil, &ServerError{Kind: wire.KindProtocol, Message: "ping response without server info"}
	}
	return &ServerStatus{
		Role:       resp.Server.Role,
		Draining:   resp.Server.Draining,
		Sessions:   resp.Server.Sessions,
		Conns:      resp.Server.Conns,
		AppliedLSN: resp.Server.AppliedLSN,
		Staleness:  time.Duration(resp.Server.StalenessMS) * time.Millisecond,
	}, nil
}

// Close releases the connection. Further calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

func resultFrom(resp *wire.Response) *Result {
	res := &Result{
		Columns: resp.Columns,
		Rows:    wire.DecodeRows(resp.Rows),
	}
	if resp.Stats != nil {
		res.Elapsed = time.Duration(resp.Stats.ElapsedUS) * time.Microsecond
		res.Stats = exec.Stats{
			Comparisons:   resp.Stats.Comparisons,
			TuplesOut:     resp.Stats.TuplesOut,
			SubqueryEvals: resp.Stats.SubqueryEvals,
			Elapsed:       time.Duration(resp.Stats.ElapsedUS) * time.Microsecond,
		}
	}
	return res
}

// do sends one request and awaits its response, retrying transport
// failures (with redial and session replay) when retry is set.
func (c *Client) do(ctx context.Context, req *wire.Request, retry bool) (*wire.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if retry {
		p := c.opts.retry
		p.RetryIf = func(err error) bool { return errors.Is(err, ErrConnection) }
		return Retry(ctx, p, func() (*wire.Response, error) { return c.roundTrip(ctx, req) })
	}
	return c.roundTrip(ctx, req)
}

// roundTrip performs one request/response exchange under c.mu.
func (c *Client) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.conn == nil {
		if err := c.connectLocked(ctx); err != nil {
			return nil, err
		}
	}
	c.nextID++
	req.ID = c.nextID
	if req.Op != wire.OpSet && req.TimeoutMS == 0 {
		if dl, ok := ctx.Deadline(); ok {
			req.TimeoutMS = max(time.Until(dl).Milliseconds(), 1)
		} else if c.opts.requestTimeout > 0 {
			req.TimeoutMS = c.opts.requestTimeout.Milliseconds()
		}
	}
	resp, err := c.exchangeLocked(ctx, req)
	if err != nil {
		// Any transport failure poisons the connection: the stream may
		// hold a half-written request or an unread response.
		c.dropLocked()
		return nil, err
	}
	if resp.Error != nil {
		return nil, &ServerError{
			Kind:     resp.Error.Kind,
			Message:  resp.Error.Message,
			Node:     resp.Error.Node,
			Op:       resp.Error.Op,
			Strategy: resp.Error.Strategy,
		}
	}
	return resp, nil
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// connectLocked dials and replays session state (defaults, prepared
// statements) so a reconnected session behaves like the one that died.
func (c *Client) connectLocked(ctx context.Context) error {
	d := net.Dialer{Timeout: c.opts.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("%w: dial %s: %v", ErrConnection, c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 64<<10)
	replay := &wire.Request{Op: wire.OpSet, Strategy: c.strategy, Path: c.path, Nulls: c.nulls, TimeoutMS: c.timeoutMS}
	if c.strategy != "" || c.path != "" || c.nulls != "" || c.timeoutMS > 0 {
		if _, err := c.exchangeLocked(ctx, replay); err != nil {
			c.dropLocked()
			return err
		}
	}
	for name, sql := range c.prepared {
		if _, err := c.exchangeLocked(ctx, &wire.Request{Op: wire.OpPrepare, Name: name, SQL: sql}); err != nil {
			c.dropLocked()
			return err
		}
	}
	return nil
}

// exchangeLocked writes req and reads frames until req's response
// arrives. An unsolicited frame (ID 0) is the server ending the
// session — idle reap or drain — and maps to ErrConnection so the
// retry layer reconnects.
func (c *Client) exchangeLocked(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if req.ID == 0 {
		c.nextID++
		req.ID = c.nextID
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	// A context cancellation mid-exchange closes the socket: the failed
	// read surfaces immediately here, and the server's watching reader
	// cancels the in-flight query within one morsel.
	stop := context.AfterFunc(ctx, func() { c.conn.Close() })
	defer stop()
	if dl, ok := ctx.Deadline(); ok {
		// Client-side wait slack over the server-side timeout, so the
		// server's typed timeout error usually wins the race.
		c.conn.SetDeadline(dl.Add(2 * time.Second))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.conn.Write(append(data, '\n')); err != nil {
		return nil, c.transportErr("write", err, ctx)
	}
	for {
		line, err := readLine(c.br, maxResponseFrame)
		if err != nil {
			return nil, c.transportErr("read", err, ctx)
		}
		var resp wire.Response
		if err := json.Unmarshal(line, &resp); err != nil {
			return nil, fmt.Errorf("%w: malformed response: %v", ErrConnection, err)
		}
		if resp.ID == req.ID {
			return &resp, nil
		}
		if resp.ID == 0 && resp.Error != nil {
			// Session-terminal notice (idle reap, drain). Reconnectable.
			return nil, fmt.Errorf("%w: session ended by server [%s]: %s",
				ErrConnection, resp.Error.Kind, resp.Error.Message)
		}
		// A stale response from an abandoned request: skip it.
	}
}

func (c *Client) transportErr(op string, err error, ctx context.Context) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return fmt.Errorf("%w: %s: %v", ErrConnection, op, err)
}

// readLine reads one newline-terminated frame, allowing frames larger
// than the bufio buffer, capped at max bytes.
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if err == nil {
			return line[:len(line)-1], nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
		if len(line) > max {
			return nil, fmt.Errorf("response frame exceeds %d bytes", max)
		}
	}
}
