package disqo_test

import (
	"fmt"
	"strings"

	"disqo"
)

// The paper's Q1: a linking predicate inside a disjunction, unnested via
// the bypass strategy.
func ExampleDB_Query() {
	db, _ := disqo.Open()
	db.Exec("CREATE TABLE r (a1 INT, a2 INT, a3 INT, a4 INT)")
	db.Exec("CREATE TABLE s (b1 INT, b2 INT, b3 INT, b4 INT)")
	db.Exec("INSERT INTO r VALUES (1, 10, 5, 1000), (2, 20, 6, 2000), (2, 10, 7, 1200)")
	db.Exec("INSERT INTO s VALUES (1, 10, 5, 1400), (2, 10, 6, 1600), (3, 20, 7, 1700)")

	res, err := db.Query(`
		SELECT DISTINCT * FROM r
		WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
		   OR a4 > 1500
		ORDER BY a1`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[3])
	}
	fmt.Println("subquery evals:", res.Stats.SubqueryEvals)
	// Output:
	// 2 2000
	// 2 1200
	// subquery evals: 0
}

// Explain shows the canonical translation next to the unnested bypass
// plan.
func ExampleDB_Explain() {
	db, _ := disqo.Open()
	db.Exec("CREATE TABLE r (a1 INT, a4 INT)")
	out, err := db.Explain("SELECT a1 FROM r WHERE a4 > 1500")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(strings.Contains(out, "canonical plan"))
	// Output:
	// true
}

// Strategies make the paper's comparison reproducible per query.
func ExampleWithStrategy() {
	db, _ := disqo.Open()
	db.Exec("CREATE TABLE r (a1 INT)")
	db.Exec("INSERT INTO r VALUES (1), (2)")
	res, _ := db.Query("SELECT a1 FROM r WHERE a1 > 1",
		disqo.WithStrategy(disqo.Canonical))
	fmt.Println(len(res.Rows))
	// Output:
	// 1
}
