package disqo

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"disqo/internal/exec"
)

// ErrOverloaded is returned (wrapped in a *QueryError) when the
// admission gate sheds a query: the concurrent-query limit is reached,
// the FIFO wait queue is full, or the wait budget (WithAdmissionWait)
// expired before a slot opened. It signals transient overload, not a
// broken query — retry with backoff via Retry:
//
//	res, err := disqo.Retry(ctx, disqo.DefaultRetryPolicy(),
//		func() (*disqo.Result, error) { return db.Query(sql) })
var ErrOverloaded = errors.New("disqo: overloaded, too many concurrent queries")

// ErrTupleLimit is the documented alias DESIGN.md uses for
// ErrMemoryLimit: the error returned when a query materializes more
// tuples than its WithTupleLimit budget (or the DB-wide
// WithSharedTupleLimit budget) allows. errors.Is(err, ErrTupleLimit)
// and errors.Is(err, ErrMemoryLimit) are interchangeable.
var ErrTupleLimit = exec.ErrMemoryLimit

// PanicError is a panic recovered inside the executor (bad tuple,
// operator bug, injected fault) and converted to an error; Stack holds
// the goroutine stack captured at the recovery point. It always arrives
// wrapped in a *QueryError; unwrap with errors.As.
type PanicError = exec.PanicError

// QueryError is the error Query, QueryContext, and Analyze return when
// execution fails (as opposed to parsing or planning, which return
// their own errors). It carries enough context to log a production
// failure usefully: the query text, the strategy, how long execution
// ran, and — when the failure is attributable — the physical plan node
// it happened at, using the same dense node IDs EXPLAIN ANALYZE prints.
//
// The underlying cause stays reachable through errors.Is / errors.As:
// ErrTimeout, ErrMemoryLimit, context.Canceled, context.DeadlineExceeded,
// and *PanicError all resolve through the wrapper.
type QueryError struct {
	Query    string        // the SQL text as submitted
	Strategy Strategy      // the strategy that was executing
	Elapsed  time.Duration // execution time until the failure surfaced
	NodeID   int           // failing physical node ID, -1 if unattributed
	Op       string        // failing operator's label, "" if unattributed
	Err      error         // the underlying cause
}

func (e *QueryError) Error() string {
	q := strings.Join(strings.Fields(e.Query), " ")
	if len(q) > 80 {
		q = q[:77] + "..."
	}
	at := ""
	if e.NodeID >= 0 {
		at = fmt.Sprintf(" at node %d (%s)", e.NodeID, e.Op)
	}
	return fmt.Sprintf("disqo: query %q [%s] failed%s after %s: %v",
		q, e.Strategy, at, e.Elapsed.Round(time.Microsecond), e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// wrapQueryError converts an execution failure into a *QueryError,
// pulling the node attribution out of the executor's *OpError wrapper
// (the plain cause remains below it in the unwrap chain).
func wrapQueryError(sql string, cfg queryConfig, elapsed time.Duration, err error) error {
	if err == nil {
		return nil
	}
	qe := &QueryError{
		Query:    sql,
		Strategy: cfg.strategy,
		Elapsed:  elapsed,
		NodeID:   -1,
		Err:      err,
	}
	var oe *exec.OpError
	if errors.As(err, &oe) {
		qe.NodeID, qe.Op = oe.NodeID, oe.Op
	}
	return qe
}
